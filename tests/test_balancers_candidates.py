"""Candidate enumeration and load aggregation."""

import numpy as np
import pytest

from repro.balancers.candidates import candidates_for, scale_to_load
from repro.namespace.builder import build_fanout
from repro.namespace.dirfrag import FragId
from repro.namespace.subtree import AuthorityMap


@pytest.fixture
def ns(tree):
    # candidates_for takes any authority namespace; a bare AuthorityMap
    # works (balancers pass the plan's PlanningNamespace overlay).
    return AuthorityMap(tree, 0)


def loads_for(ns, values: dict[int, float]):
    arr = np.zeros(ns.tree.n_dirs)
    for d, v in values.items():
        arr[d] = v
    return arr


class TestAggregation:
    def test_subtree_load_sums_descendants(self, ns):
        per_dir = loads_for(ns, {2: 5.0, 3: 7.0, 4: 1.0})
        cs = {c.unit: c for c in candidates_for(ns, 0, per_dir)}
        assert cs[2].load == pytest.approx(13.0)
        assert cs[3].load == pytest.approx(7.0)
        assert cs[2].self_load == pytest.approx(5.0)

    def test_root_dir_never_a_candidate(self, ns):
        cs = candidates_for(ns, 0, loads_for(ns, {1: 1.0}))
        assert all(c.unit != 0 for c in cs)

    def test_inode_counts(self, ns):
        cs = {c.unit: c for c in candidates_for(ns, 0, np.zeros(ns.tree.n_dirs))}
        # dir 2 subtree: dirs {2,3,4} + files 2+4+0
        assert cs[2].inodes == 9
        assert cs[1].inodes == 4

    def test_sorted_descending(self, ns):
        per_dir = loads_for(ns, {1: 2.0, 3: 9.0})
        cs = candidates_for(ns, 0, per_dir)
        loads = [c.load for c in cs]
        assert loads == sorted(loads, reverse=True)

    def test_nested_foreign_subtree_excluded(self, ns):
        ns.set_subtree_auth(3, 1)
        per_dir = loads_for(ns, {2: 5.0, 3: 7.0})
        cs = {c.unit: c for c in candidates_for(ns, 0, per_dir)}
        assert cs[2].load == pytest.approx(5.0)  # dir 3 now someone else's
        assert 3 not in cs

    def test_other_mds_sees_its_extent(self, ns):
        ns.set_subtree_auth(3, 1)
        per_dir = loads_for(ns, {3: 7.0})
        cs = {c.unit: c for c in candidates_for(ns, 1, per_dir)}
        assert set(cs) == {3}
        assert cs[3].load == pytest.approx(7.0)


class TestFragCandidates:
    def test_owned_frags_emitted(self, ns):
        ns.split_dir(3, 1)
        ns.set_frag_auth(FragId(3, 1, 1), 2)
        per_dir = loads_for(ns, {3: 8.0})
        cs = candidates_for(ns, 0, per_dir)
        frags = [c for c in cs if c.is_frag]
        assert len(frags) == 1
        assert frags[0].unit == FragId(3, 1, 0)
        assert frags[0].load == pytest.approx(4.0)  # half the files

    def test_fragmented_dir_candidate_excludes_file_load(self, ns):
        ns.split_dir(3, 1)
        per_dir = loads_for(ns, {3: 8.0})
        cs = {c.unit: c for c in candidates_for(ns, 0, per_dir)}
        assert cs[3].load == 0.0  # files route by frag now
        assert cs[FragId(3, 1, 0)].load + cs[FragId(3, 1, 1)].load == pytest.approx(8.0)

    def test_foreign_frags_not_emitted(self, ns):
        ns.split_dir(3, 1)
        ns.set_frag_auth(FragId(3, 1, 0), 1)
        ns.set_frag_auth(FragId(3, 1, 1), 1)
        cs = candidates_for(ns, 0, loads_for(ns, {3: 8.0}))
        assert not any(c.is_frag for c in cs)


class TestScaleToLoad:
    def test_partition_scales_exactly(self, ns):
        per_dir = loads_for(ns, {1: 3.0, 3: 7.0})
        cs = candidates_for(ns, 0, per_dir)
        scale = scale_to_load(cs, 100.0)
        assert scale == pytest.approx(10.0)

    def test_zero_estimate_returns_zero(self, ns):
        cs = candidates_for(ns, 0, np.zeros(ns.tree.n_dirs))
        assert scale_to_load(cs, 100.0) == 0.0

    def test_zero_measured_load_returns_zero(self, ns):
        cs = candidates_for(ns, 0, loads_for(ns, {1: 3.0}))
        assert scale_to_load(cs, 0.0) == 0.0

    def test_frag_partition_not_double_counted(self, ns):
        ns.split_dir(3, 1)
        per_dir = loads_for(ns, {3: 8.0, 1: 2.0})
        cs = candidates_for(ns, 0, per_dir)
        assert scale_to_load(cs, 10.0) == pytest.approx(1.0)


class TestFanoutScale:
    def test_many_dirs(self):
        b = build_fanout(50, 4)
        ns = AuthorityMap(b.tree, 0)
        per_dir = np.ones(b.tree.n_dirs)
        cs = candidates_for(ns, 0, per_dir)
        by_unit = {c.unit: c for c in cs}
        # the workload root aggregates all 50 leaf dirs plus itself
        assert by_unit[b.root].load == pytest.approx(51.0)
        assert len(cs) == 51
