"""The IF model (paper Eq. 1-3)."""


import pytest
from hypothesis import given, strategies as st

from repro.core.if_model import imbalance_factor, urgency


class TestUrgency:
    def test_midpoint_is_half(self):
        # u = 0.5 is the logistic midpoint regardless of S
        for s in (0.1, 0.2, 0.5):
            assert urgency(50.0, 100.0, s) == pytest.approx(0.5)

    def test_saturated_mds_is_urgent(self):
        assert urgency(100.0, 100.0, 0.2) > 0.99

    def test_idle_cluster_not_urgent(self):
        assert urgency(0.0, 100.0, 0.2) < 0.01

    def test_overload_clamped(self):
        assert urgency(500.0, 100.0) == urgency(100.0, 100.0)

    def test_negative_clamped(self):
        assert urgency(-5.0, 100.0) == urgency(0.0, 100.0)

    def test_smoothness_controls_steepness(self):
        # a smaller S makes the curve steeper around the midpoint
        sharp = urgency(60.0, 100.0, 0.1)
        smooth = urgency(60.0, 100.0, 0.5)
        assert sharp > smooth

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            urgency(1.0, 0.0)

    def test_rejects_bad_smoothness(self):
        with pytest.raises(ValueError):
            urgency(1.0, 1.0, 0.0)

    @given(st.floats(0.0, 200.0))
    def test_in_unit_interval(self, l_max):
        assert 0.0 <= urgency(l_max, 100.0) <= 1.0

    @given(st.floats(0.0, 99.0), st.floats(0.0, 1.0))
    def test_monotone_in_load(self, l, dl):
        assert urgency(l + dl, 100.0) >= urgency(l, 100.0)


class TestImbalanceFactor:
    def test_perfect_balance_is_zero(self):
        assert imbalance_factor([80.0] * 5, 100.0) == 0.0

    def test_single_busy_mds_near_one(self):
        # normalization bound: one saturated MDS, the rest idle
        assert imbalance_factor([100.0, 0, 0, 0, 0], 100.0) > 0.98

    def test_idle_cluster_is_zero(self):
        assert imbalance_factor([0.0] * 5, 100.0) == 0.0

    def test_single_mds_is_zero(self):
        assert imbalance_factor([100.0], 100.0) == 0.0

    def test_benign_imbalance_suppressed(self):
        # Same dispersion, low absolute load: the urgency gate kicks in.
        light = imbalance_factor([10.0, 1, 1, 1, 1], 100.0)
        heavy = imbalance_factor([100.0, 10, 10, 10, 10], 100.0)
        assert light < 0.05
        assert heavy > 10 * light

    def test_paper_zipf_scenario_detected(self):
        # §2.2: loads (13530, 14567, 15625, 11610, 2692) — vanilla saw
        # "busiest close to average" and skipped; the IF model must flag it.
        loads = [13530, 14567, 15625, 11610, 2692]
        val = imbalance_factor(loads, 16000.0)
        assert val > 0.09

    @given(st.lists(st.floats(0.0, 100.0), min_size=2, max_size=16))
    def test_bounded_unit_interval(self, loads):
        assert 0.0 <= imbalance_factor(loads, 100.0) <= 1.0

    @given(st.lists(st.floats(0.0, 100.0), min_size=2, max_size=16),
           st.floats(0.05, 1.0))
    def test_any_smoothness_bounded(self, loads, s):
        assert 0.0 <= imbalance_factor(loads, 100.0, s) <= 1.0
