"""OSD pool processor sharing."""

import pytest

from repro.cluster.osd import OsdPool


class TestValidation:
    def test_rejects_no_osds(self):
        with pytest.raises(ValueError):
            OsdPool(0, 1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            OsdPool(1, 0.0)

    def test_rejects_negative_transfer(self):
        pool = OsdPool(1, 10.0)
        with pytest.raises(ValueError):
            pool.start(1, -5.0)

    def test_rejects_removal(self):
        pool = OsdPool(2, 10.0)
        with pytest.raises(ValueError):
            pool.add_osds(-1)


class TestSharing:
    def test_single_client_full_bandwidth(self):
        pool = OsdPool(2, 5.0)  # 10 bytes/tick
        pool.start(1, 25.0)
        assert pool.tick() == []
        assert pool.outstanding(1) == pytest.approx(15.0)
        pool.tick()
        done = pool.tick()
        assert done == [1]
        assert not pool.busy(1)

    def test_fair_share_between_clients(self):
        pool = OsdPool(1, 10.0)
        pool.start(1, 10.0)
        pool.start(2, 10.0)
        pool.tick()
        assert pool.outstanding(1) == pytest.approx(5.0)
        assert pool.outstanding(2) == pytest.approx(5.0)

    def test_accumulates_outstanding(self):
        pool = OsdPool(1, 1.0)
        pool.start(1, 3.0)
        pool.start(1, 4.0)
        assert pool.outstanding(1) == pytest.approx(7.0)

    def test_bytes_served_accounting(self):
        pool = OsdPool(1, 10.0)
        pool.start(1, 4.0)
        pool.tick()
        assert pool.bytes_served == pytest.approx(4.0)

    def test_add_osds_increases_bandwidth(self):
        pool = OsdPool(1, 10.0)
        pool.add_osds(3)
        assert pool.total_bandwidth == pytest.approx(40.0)

    def test_idle_tick_noop(self):
        pool = OsdPool(1, 10.0)
        assert pool.tick() == []
        assert pool.inflight_count() == 0
