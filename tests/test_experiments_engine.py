"""The process-pool experiment engine: hashing, caching, determinism.

The engine's promise is simple: any sweep's results are a pure function of
its configs — identical at any worker count, in input order, with the
decision trace crossing the process boundary byte-intact. The golden
traces double as the cross-process fixture: a 2-worker run of the golden
scenarios must reproduce ``tests/golden/*.jsonl`` exactly.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.cluster.simulator import SimConfig
from repro.core.initiator import InitiatorConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine, config_hash
from repro.experiments.runner import run_matrix

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: a deliberately tiny grid — the engine's behaviour, not simulation cost,
#: is under test
FAST = ExperimentConfig(n_clients=4, scale=0.15,
                        sim=SimConfig(n_mds=3, mds_capacity=60.0, epoch_len=5,
                                      max_ticks=2000, migration_rate=50))


class TestConfigHash:
    def test_equal_configs_equal_hashes(self):
        a = ExperimentConfig(workload="zipf", n_clients=4)
        b = ExperimentConfig(workload="zipf", n_clients=4)
        assert config_hash(a) == config_hash(b)

    def test_any_field_changes_the_hash(self):
        base = ExperimentConfig()
        variants = [
            ExperimentConfig(workload="cnn"),
            ExperimentConfig(balancer="vanilla"),
            ExperimentConfig(n_clients=21),
            ExperimentConfig(seed=8),
            ExperimentConfig(scale=0.5),
            ExperimentConfig(data_path=True),
            ExperimentConfig(sim=SimConfig(n_mds=3)),
            ExperimentConfig(workload_overrides={"reads_per_client": 10}),
            ExperimentConfig(balancer_kwargs={"tolerance": 0.2}),
        ]
        h = config_hash(base)
        for v in variants:
            assert config_hash(v) != h, v

    def test_nested_dataclass_kwargs_hash_by_value(self):
        a = ExperimentConfig(
            balancer_kwargs={"config": InitiatorConfig(if_threshold=0.3)})
        b = ExperimentConfig(
            balancer_kwargs={"config": InitiatorConfig(if_threshold=0.3)})
        c = ExperimentConfig(
            balancer_kwargs={"config": InitiatorConfig(if_threshold=0.4)})
        assert config_hash(a) == config_hash(b)
        assert config_hash(a) != config_hash(c)


class TestCaching:
    def test_repeat_configs_hit_the_cache(self):
        eng = ExperimentEngine()
        cfg = FAST
        first = eng.run([cfg])
        assert (eng.hits, eng.misses) == (0, 1)
        second = eng.run([cfg])
        assert (eng.hits, eng.misses) == (1, 1)
        assert first[0] is second[0]

    def test_duplicates_within_a_batch_run_once(self):
        eng = ExperimentEngine()
        results = eng.run([FAST, FAST, FAST])
        assert eng.misses == 1 and eng.hits == 2
        assert results[0] is results[1] is results[2]

    def test_clear_cache(self):
        eng = ExperimentEngine()
        eng.run([FAST])
        eng.clear_cache()
        assert eng.cache_size == 0
        eng.run([FAST])
        assert eng.misses == 1


class TestDeterminism:
    def test_two_workers_match_serial_run_matrix(self):
        serial = run_matrix(["zipf", "mdtest"], ["nop", "lunule"], FAST)
        parallel = run_matrix(["zipf", "mdtest"], ["nop", "lunule"], FAST,
                              workers=2)
        assert list(serial) == list(parallel)  # cell order preserved
        assert serial == parallel  # SimResult dataclass equality

    def test_results_come_back_in_input_order(self):
        from dataclasses import replace

        cfgs = [replace(FAST, workload=w, balancer=b)
                for w in ("mdtest", "zipf") for b in ("lunule", "nop")]
        results = ExperimentEngine(workers=2).run(cfgs)
        for cfg, res in zip(cfgs, results):
            assert res.workload == cfg.workload
            assert res.balancer == cfg.balancer


class TestCrossProcessObservability:
    GRID = [("mdtest", "lunule"), ("mdtest", "vanilla"),
            ("zipf", "lunule"), ("zipf", "nop")]

    def _run(self, workers: int):
        from dataclasses import replace

        cfgs = [replace(FAST, workload=w, balancer=b) for w, b in self.GRID]
        labels = [f"{w}x{b}" for w, b in self.GRID]
        return ExperimentEngine(workers=workers).run_with_obs(cfgs,
                                                              labels=labels)

    def test_two_workers_aggregate_byte_identical_to_serial(self):
        """The acceptance bar: pooled obs aggregation == serial, as bytes."""
        import json

        _, serial = self._run(1)
        _, pooled = self._run(2)
        dumps = lambda agg: json.dumps(agg, sort_keys=True)  # noqa: E731
        assert dumps(serial) == dumps(pooled)

    def test_aggregate_shape(self):
        results, agg = self._run(2)
        assert len(results) == len(self.GRID)
        assert set(agg) == {"metrics", "spans", "runs"}
        assert set(agg["runs"]) == {f"{w}x{b}" for w, b in self.GRID}
        # per-run process labels survive the merge, in input order
        meta = [e for e in agg["spans"] if e["ph"] == "M"]
        assert [e["args"]["name"] for e in meta] == \
            [f"{w}x{b}" for w, b in self.GRID]
        # merged counters sum across runs: the aggregate epoch count covers
        # every run's own epochs
        epochs = agg["metrics"]["sim.epochs"]["series"][0]["value"]
        assert epochs == sum(len(res.if_series) for res in results)

    def test_with_obs_forces_the_recorder_without_touching_results(self):
        eng = ExperimentEngine()
        plain = eng.run([FAST])[0]
        result, payload = eng.run([FAST], with_obs=True)[0]
        assert result == plain
        assert payload["timeseries"]["rows"]
        assert payload["spans"]


class TestCrossProcessTraces:
    @pytest.mark.parametrize("name,workload,balancer", [
        ("mdtest_lunule", "mdtest", "lunule"),
        ("mixed_vanilla", "mixed", "vanilla"),
    ])
    def test_worker_traces_byte_match_goldens(self, name, workload, balancer):
        """A 2-worker engine run reproduces the golden traces byte-for-byte."""
        path = GOLDEN_DIR / f"{name}.jsonl"
        if not path.exists():
            pytest.skip("golden trace not generated yet")
        golden_sim = SimConfig(n_mds=3, mds_capacity=60.0, epoch_len=5,
                               max_ticks=3000, migration_rate=50, seed=0)
        cfgs = [ExperimentConfig(workload=w, balancer=b, n_clients=8, seed=7,
                                 scale=0.15, sim=golden_sim)
                for w, b in ((workload, balancer), ("mdtest", "vanilla"))]
        results = ExperimentEngine(workers=2).run(cfgs, with_trace=True)
        _, trace = results[0]
        assert trace == path.read_text(encoding="utf-8")
