"""Subtree-root and dirfrag merging (authority-map housekeeping)."""


from repro.namespace.dirfrag import FragId


class TestMergeRedundantRoots:
    def test_colocated_root_dropped(self, authmap):
        authmap.set_subtree_auth(2, 0)  # same authority as its parent chain
        removed = authmap.merge_redundant_roots()
        assert removed == 1
        assert not authmap.is_subtree_root(2)
        assert authmap.resolve_dir(3) == (0, 0)

    def test_distinct_root_kept(self, authmap):
        authmap.set_subtree_auth(2, 1)
        assert authmap.merge_redundant_roots() == 0
        assert authmap.is_subtree_root(2)

    def test_cascading_merge(self, authmap):
        # 3 under 2 under root: both become redundant once 2 merges
        authmap.set_subtree_auth(2, 1)
        authmap.set_subtree_auth(3, 1)
        assert authmap.merge_redundant_roots() == 1  # 3 merges into 2
        authmap.set_subtree_auth(2, 0)
        assert authmap.merge_redundant_roots() == 1  # now 2 merges into root
        assert authmap.subtree_roots() == {0: 0}

    def test_resolution_unchanged_by_merge(self, authmap):
        authmap.set_subtree_auth(2, 1)
        authmap.set_subtree_auth(3, 1)
        before = {d: authmap.resolve_dir(d)[0] for d in range(authmap.tree.n_dirs)}
        authmap.merge_redundant_roots()
        after = {d: authmap.resolve_dir(d)[0] for d in range(authmap.tree.n_dirs)}
        assert before == after

    def test_root_never_merged(self, authmap):
        assert authmap.merge_redundant_roots() == 0
        assert authmap.is_subtree_root(0)


class TestMergeUniformFrags:
    def test_uniform_home_frags_merged(self, authmap):
        authmap.split_dir(3, 1)
        assert authmap.merge_uniform_frags() == 1
        assert authmap.frag_state(3) is None

    def test_mixed_owners_kept(self, authmap):
        authmap.split_dir(3, 1)
        authmap.set_frag_auth(FragId(3, 1, 1), 2)
        assert authmap.merge_uniform_frags() == 0
        assert authmap.frag_state(3) is not None

    def test_uniform_foreign_frags_kept(self, authmap):
        authmap.split_dir(3, 1)
        authmap.set_frag_auth(FragId(3, 1, 0), 2)
        authmap.set_frag_auth(FragId(3, 1, 1), 2)
        # all frags on MDS-2 but the dir authority is MDS-0: files live away
        assert authmap.merge_uniform_frags() == 0

    def test_exclusion_protects_pending_dirs(self, authmap):
        authmap.split_dir(3, 1)
        assert authmap.merge_uniform_frags(exclude={3}) == 0
        assert authmap.frag_state(3) is not None

    def test_merge_bumps_version(self, authmap):
        authmap.split_dir(3, 1)
        v = authmap.version
        authmap.merge_uniform_frags()
        assert authmap.version > v


class TestMergeInSimulation:
    def test_root_count_stays_bounded(self):
        from repro.balancers import make_balancer
        from repro.cluster.simulator import SimConfig, Simulator
        from repro.workloads import ZipfWorkload

        wl = ZipfWorkload(12, files_per_dir=80, reads_per_client=800)
        sim = Simulator(wl.materialize(seed=5), make_balancer("lunule"),
                        SimConfig(n_mds=4, mds_capacity=60, epoch_len=5,
                                  max_ticks=4000))
        res = sim.run()
        assert res.committed_tasks > 0
        # 12 client dirs + zipf root + fs root is the most that can stay
        # distinct; merging keeps the map near that bound
        assert len(sim.authmap.subtree_roots()) <= 14
