"""Terminal plotting helpers."""

import pytest

from repro.experiments.plots import bar_chart, series_strip, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches_width_when_long(self):
        assert len(sparkline(range(200), width=50)) == 50

    def test_short_series_not_stretched(self):
        assert len(sparkline([1, 2, 3], width=50)) == 3

    def test_all_zero_is_flat(self):
        s = sparkline([0, 0, 0])
        assert len(set(s)) == 1

    def test_monotone_series_is_monotone(self):
        s = sparkline([0, 1, 2, 3, 4], ascii_only=True)
        order = [" .:-=+*#%@".index(c) for c in s]
        assert order == sorted(order)

    def test_shared_vmax_scales_down(self):
        low = sparkline([1, 1, 1], v_max=10.0, ascii_only=True)
        assert set(low) <= set(" .:-")

    def test_ascii_mode_is_ascii(self):
        assert sparkline([1, 5, 2], ascii_only=True).isascii()


class TestBarChart:
    def test_alignment(self):
        out = bar_chart(["a", "longer"], [10.0, 5.0])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_largest_bar_is_longest(self):
        out = bar_chart(["x", "y"], [2.0, 8.0])
        x_bar, y_bar = (l.count("█") for l in out.splitlines())
        assert y_bar > x_bar

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == ""


class TestSeriesStrip:
    def test_shared_scale_comparable(self):
        out = series_strip({"hot": [10, 10], "cold": [1, 1]})
        hot, cold = out.splitlines()
        assert "max 10" in hot and "max 1" in cold

    def test_empty(self):
        assert series_strip({}) == ""

    def test_labels_aligned(self):
        out = series_strip({"a": [1], "quite-long": [2]})
        assert all("|" in l for l in out.splitlines())
        bars = [l.index("|") for l in out.splitlines()]
        assert len(set(bars)) == 1
