"""Property tests of the cutting-window bookkeeping in AccessStats.

The migration index is only as good as these counters; the properties
below pin down the window algebra regardless of access pattern.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster.stats import AccessStats
from repro.namespace.builder import build_fanout

# an access script: per epoch, a list of (dir_index, file_index) touches
script_strategy = st.lists(
    st.lists(st.tuples(st.integers(0, 4), st.integers(0, 9)), max_size=30),
    min_size=1, max_size=8,
)


def replay(script, *, windows=3, recurrence=2, sibling=0.0):
    built = build_fanout(5, 10)
    stats = AccessStats(built.tree, recurrence_window=recurrence,
                        pattern_windows=windows,
                        sibling_probability=sibling, seed=1)
    per_epoch = []
    for epoch_ops in script:
        counts = np.zeros(built.tree.n_dirs)
        for di, fi in epoch_ops:
            d = built.dirs[di]
            stats.record_file_access(d, fi)
            counts[d] += 1
        stats.end_epoch()
        per_epoch.append(counts)
    return built, stats, per_epoch


class TestWindowAlgebra:
    @given(script_strategy)
    @settings(max_examples=40, deadline=None)
    def test_window_visits_equal_recent_epoch_sum(self, script):
        built, stats, per_epoch = replay(script, windows=3)
        expected = np.sum(per_epoch[-3:], axis=0)
        assert np.array_equal(stats.pattern_arrays()["visits"], expected)

    @given(script_strategy)
    @settings(max_examples=40, deadline=None)
    def test_visits_partition_into_recurrent_and_first(self, script):
        built, stats, _ = replay(script)
        arrays = stats.pattern_arrays()
        assert np.array_equal(arrays["visits"],
                              arrays["recurrent"] + arrays["first"])

    @given(script_strategy)
    @settings(max_examples=40, deadline=None)
    def test_ls_equals_first_without_sibling_bonus(self, script):
        built, stats, _ = replay(script, sibling=0.0)
        arrays = stats.pattern_arrays()
        assert np.array_equal(arrays["ls"], arrays["first"])

    @given(script_strategy)
    @settings(max_examples=40, deadline=None)
    def test_all_window_sums_non_negative(self, script):
        built, stats, _ = replay(script)
        for name, arr in stats.pattern_arrays().items():
            assert (arr >= 0).all(), name

    @given(script_strategy)
    @settings(max_examples=40, deadline=None)
    def test_unvisited_stock_bounded_by_files(self, script):
        built, stats, _ = replay(script)
        stock = stats.unvisited_array()
        for d in range(built.tree.n_dirs):
            assert 0 <= stock[d] <= built.tree.n_files[d]

    @given(script_strategy, st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_idle_epochs_drain_the_window(self, script, idle):
        built, stats, _ = replay(script, windows=3)
        for _ in range(max(3, idle)):
            stats.end_epoch()
        arrays = stats.pattern_arrays()
        for name in ("visits", "recurrent", "first", "ls", "created"):
            assert np.allclose(arrays[name], 0.0), name


class TestHeatAlgebra:
    @given(script_strategy)
    @settings(max_examples=30, deadline=None)
    def test_heat_is_decayed_visit_sum(self, script):
        built, stats, per_epoch = replay(script)
        decay = stats.heat_decay
        expected = np.zeros(built.tree.n_dirs)
        for counts in per_epoch:
            expected = (expected + counts) * decay
        assert np.allclose(stats.heat_array(), expected)

    @given(script_strategy)
    @settings(max_examples=30, deadline=None)
    def test_heat_never_negative(self, script):
        _, stats, _ = replay(script)
        assert (stats.heat_array() >= 0).all()
