"""Workload characterization: skew math, profiles, columns and gauges."""

import math

import pytest

from repro.obs.events import NO_DECISION, WorkloadProfiled, event_from_json, event_to_json
from repro.obs.prom import parse_openmetrics, render_openmetrics
from repro.obs.provenance import ProvenanceGraph
from repro.obs.registry import MetricsRegistry
from repro.obs.tracelog import TraceLog, filter_events
from repro.obs.workload import (
    TOPK_DEFAULT,
    WorkloadProfile,
    classify_op_mix,
    emit_profiles,
    gini,
    normalized_entropy,
    profiles_from_timeseries,
    topk_share,
)


class TestSkewMath:
    def test_uniform_is_flat(self):
        values = [5.0] * 8
        assert gini(values) == pytest.approx(0.0)
        assert normalized_entropy(values) == pytest.approx(1.0)

    def test_single_hot_member_among_many_is_concentrated(self):
        # sparse form: one nonzero dirfrag, 10_000-member population
        assert gini([42.0], total_count=10_000) == pytest.approx(1.0, abs=1e-3)
        assert normalized_entropy([42.0], total_count=10_000) == 0.0

    def test_sparse_matches_dense(self):
        dense = [0.0] * 96 + [1.0, 2.0, 3.0, 10.0]
        nonzero = [1.0, 2.0, 3.0, 10.0]
        assert gini(nonzero, total_count=100) == pytest.approx(gini(dense))
        assert normalized_entropy(nonzero, total_count=100) == pytest.approx(
            normalized_entropy(dense))

    def test_idle_and_degenerate_populations_score_zero(self):
        for fn in (gini, normalized_entropy):
            assert fn([]) == 0.0
            assert fn([0.0, 0.0]) == 0.0
            assert fn([7.0]) == 0.0  # single-member population

    def test_entropy_never_renders_negative_zero(self):
        # one member holding all mass used to produce IEEE -0.0
        assert str(normalized_entropy([5.0], total_count=4)) == "0.0"

    def test_topk_share(self):
        values = [10.0, 5.0, 3.0, 2.0]
        assert topk_share(values, 1) == pytest.approx(0.5)
        assert topk_share(values, 2) == pytest.approx(0.75)
        assert topk_share(values, 100) == 1.0
        assert topk_share(values, 0) == 0.0
        assert topk_share([], 3) == 0.0

    def test_gini_orders_by_concentration(self):
        mild = gini([4.0, 5.0, 6.0], total_count=50)
        harsh = gini([0.1, 0.1, 100.0], total_count=50)
        assert 0.0 < mild < harsh <= 1.0


class TestOpMixClasses:
    def test_all_five_classes(self):
        assert classify_op_mix(0, 0, 0, 0) == "idle"
        assert classify_op_mix(10, 6, 8, 2) == "create_heavy"
        # created is a subset of first: creates win even when first is
        # also a majority
        assert classify_op_mix(10, 1, 8, 2) == "scan_heavy"
        assert classify_op_mix(10, 0, 2, 8) == "read_heavy"
        assert classify_op_mix(10, 2, 4, 4) == "mixed"

    def test_event_vocabulary_is_closed(self):
        with pytest.raises(ValueError, match="unknown op-mix class"):
            WorkloadProfiled(epoch=0, load_gini=0, load_entropy=0,
                             heat_gini=0, heat_entropy=0, top1_share=0,
                             topk_share=0, churn=0, op_mix="write_heavy")


class TestWorkloadProfile:
    def profile(self):
        return WorkloadProfile.compute(
            epoch=4,
            loads=[30.0, 10.0, 0.0],
            heat_values=[8.0, 4.0, 2.0, 1.0],
            n_dirs=200,
            mix={"visits": 100, "created": 10, "first": 20, "recurrent": 60},
            clients_started=2, clients_done=1, active_clients=6)

    def test_compute(self):
        p = self.profile()
        assert p.epoch == 4
        assert p.op_mix == "read_heavy"
        assert p.churn == pytest.approx(0.5)
        assert p.top1_share == pytest.approx(8.0 / 15.0)
        assert p.topk_share == 1.0  # only 4 nonzero frags, k=8
        assert 0.9 < p.heat_gini <= 1.0  # 4 hot frags out of 200
        assert p.load_gini == pytest.approx(gini([30.0, 10.0, 0.0]))

    def test_churn_guards_an_empty_active_population(self):
        p = WorkloadProfile.compute(
            epoch=0, loads=[], heat_values=[], n_dirs=0, mix={},
            clients_started=3, clients_done=3, active_clients=0)
        assert p.churn == 6.0
        assert p.op_mix == "idle"

    def test_record_round_trips_through_timeseries_columns(self):
        p = self.profile()
        record = p.to_record()
        assert set(record) == {
            "wl.load_gini", "wl.load_entropy", "wl.heat_gini",
            "wl.heat_entropy", "wl.top1_share", "wl.topk_share",
            "wl.churn", "wl.op_mix"}
        snapshot = {name: [None, value] for name, value in record.items()}
        snapshot["epoch"] = [3, 4]
        (back,) = profiles_from_timeseries(snapshot)
        assert back == p

    def test_event_round_trips_as_json(self):
        e = self.profile().to_event(did=17)
        assert e.op_mix == "read_heavy" and e.did == 17
        assert event_from_json(event_to_json(e)) == e

    def test_gauges(self):
        registry = MetricsRegistry()
        p = self.profile()
        p.to_gauges(registry)
        assert registry.get_value("workload.heat_gini") == p.heat_gini
        assert registry.get_value("workload.hotspot_share",
                                  k="1") == p.top1_share
        assert registry.get_value("workload.hotspot_share",
                                  k=str(TOPK_DEFAULT)) == p.topk_share
        # opmix class index is a gauge too (dashboards map it back)
        assert registry.get_value("workload.opmix_class") == 3.0
        text = render_openmetrics(registry)
        families = parse_openmetrics(text)
        assert "workload_heat_gini" in families
        assert "workload_hotspot_share" in families
        assert "workload_client_churn" in families

    def test_profiles_from_timeseries_without_columns_is_empty(self):
        assert profiles_from_timeseries({"epoch": [0, 1]}) == []


class TestSimulatorIntegration:
    def run_pair(self, make_sim):
        plain = make_sim("lunule", record=True)
        plain.run()
        profiled = make_sim("lunule", record=True, workload_profile=True)
        profiled.run()
        return plain, profiled

    def test_profiling_leaves_the_decision_trace_untouched(self, make_sim):
        plain, profiled = self.run_pair(make_sim)
        assert profiled.trace.dumps() == plain.trace.dumps()

    def test_wl_columns_only_exist_when_enabled(self, make_sim):
        plain, profiled = self.run_pair(make_sim)
        on = set(profiled.recorder.timeseries.columns())
        off = set(plain.recorder.timeseries.columns())
        wl = {c for c in on if c.startswith("wl.")}
        assert wl == {"wl.load_gini", "wl.load_entropy", "wl.heat_gini",
                      "wl.heat_entropy", "wl.top1_share", "wl.topk_share",
                      "wl.churn", "wl.op_mix"}
        assert not {c for c in off if c.startswith("wl.")}

    def test_profile_stream_is_sane_and_rebuildable(self, make_sim):
        _, profiled = self.run_pair(make_sim)
        ts = profiled.recorder.timeseries
        snapshot = {name: ts.column(name) for name in ts.columns()}
        profiles = profiles_from_timeseries(snapshot)
        assert len(profiles) == len(profiled.recorder.timeseries)
        for p in profiles:
            assert 0.0 <= p.heat_gini <= 1.0
            assert 0.0 <= p.heat_entropy <= 1.0
            assert 0.0 <= p.top1_share <= p.topk_share <= 1.0
            assert not math.isnan(p.churn)
        assert profiled.last_workload_profile == profiles[-1]

    def test_workload_gauges_exported(self, make_sim):
        _, profiled = self.run_pair(make_sim)
        families = parse_openmetrics(render_openmetrics(profiled.metrics))
        assert "workload_heat_gini" in families
        assert "workload_opmix_class" in families
        plain_families = parse_openmetrics(
            render_openmetrics(self.run_pair(make_sim)[0].metrics))
        assert "workload_heat_gini" not in plain_families


class TestEmitAndFilter:
    def emitted_log(self, make_sim):
        profiled = make_sim("lunule", record=True, workload_profile=True)
        profiled.run()
        ts = profiled.recorder.timeseries
        profiles = profiles_from_timeseries(
            {name: ts.column(name) for name in ts.columns()})
        log = TraceLog(ids=profiled.trace.ids)
        for e in profiled.trace.events():
            log.emit(e)
        n = emit_profiles(log, profiles)
        return log, profiles, n

    def test_emitted_stream_indexes_in_the_provenance_graph(self, make_sim):
        log, profiles, n = self.emitted_log(make_sim)
        assert n == len(profiles) > 0
        graph = ProvenanceGraph(log.events())
        tagged = [graph.nodes[d] for d in graph.nodes
                  if graph.nodes[d].etype == "workload_profiled"]
        assert len(tagged) == n
        assert all(e.did != NO_DECISION for e in tagged)

    def test_filter_events_slices_profiles_by_type_and_epoch(self, make_sim):
        log, profiles, n = self.emitted_log(make_sim)
        only = filter_events(log.events(), etypes=["workload_profiled"])
        assert len(only) == n
        first_epoch = profiles[0].epoch
        sliced = filter_events(log.events(), etypes=["workload_profiled"],
                               epoch_range=(first_epoch, first_epoch))
        assert [e.epoch for e in sliced] == [first_epoch]
