"""The migration cost/benefit ledger: verdicts, waste, provenance."""

import pytest

from repro.cluster.simulator import SimConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_traced
from repro.obs.events import (
    DecisionIds,
    EpochStart,
    IfComputed,
    MigrationAborted,
    MigrationCommitted,
    MigrationOutcome,
    MigrationPlanned,
    event_from_json,
    event_to_json,
)
from repro.obs.outcomes import (
    OutcomeConfig,
    aborted_waste,
    build_ledger,
    emit_outcomes,
)
from repro.obs.provenance import ProvenanceGraph, explain, render_explain
from repro.obs.tracelog import TraceLog, filter_events

EPOCH_LEN = 5


def epochs(loads_by_epoch):
    """epoch_start + simulator if_computed per epoch, golden cadence."""
    out = []
    for k, loads in enumerate(loads_by_epoch):
        out.append(EpochStart(epoch=k, tick=(k + 1) * EPOCH_LEN))
        out.append(IfComputed(epoch=k, value=0.0, loads=tuple(loads),
                              source="simulator", did=1000 + k))
    return out


def migration(*, plan_tick, src, dst, unit, inodes, load, did):
    """A planned+committed pair (commit on the next tick)."""
    return [
        MigrationPlanned(tick=plan_tick, src=src, dst=dst, unit=unit,
                         inodes=inodes, load=load, did=did),
        MigrationCommitted(tick=plan_tick + 1, src=src, dst=dst, unit=unit,
                           inodes=inodes, did=did + 1, parent=did),
    ]


class TestVerdicts:
    def test_receiver_that_keeps_the_load_pays_off(self):
        # dst rank 1 idles at 10, then serves ~+15 for every epoch after
        # the epoch-2 commit — realized covers the planned 14.0 fully
        trace = epochs([(30, 10, 0)] * 3 + [(16, 25, 0)] * 6)
        trace += migration(plan_tick=14, src=0, dst=1, unit=7, inodes=60,
                           load=14.0, did=0)
        ledger = build_ledger(trace)
        (entry,) = ledger.entries
        assert entry.verdict == "paid_off"
        assert entry.epoch == 2 and entry.observed_epochs == 5
        assert entry.ratio == pytest.approx(1.0)

    def test_subtree_that_goes_cold_is_wasted(self):
        # dst never picks up measurable load over its baseline
        trace = epochs([(30, 10, 0)] * 9)
        trace += migration(plan_tick=14, src=0, dst=1, unit=7, inodes=60,
                           load=14.0, did=0)
        ledger = build_ledger(trace)
        (entry,) = ledger.entries
        assert entry.verdict == "wasted"
        assert entry.realized == 0.0

    def test_partial_benefit_is_neutral(self):
        # dst gains ~3 of the promised 14 per epoch: ratio ~0.2
        trace = epochs([(30, 10, 0)] * 3 + [(27, 13, 0)] * 6)
        trace += migration(plan_tick=14, src=0, dst=1, unit=7, inodes=60,
                           load=14.0, did=0)
        ledger = build_ledger(trace)
        (entry,) = ledger.entries
        assert entry.verdict == "neutral"
        assert 0.1 <= entry.ratio < 0.5

    def test_no_observable_epochs_is_neutral(self):
        # the run ends at the commit epoch: nothing to judge against
        trace = epochs([(30, 10, 0)] * 3)
        trace += migration(plan_tick=14, src=0, dst=1, unit=7, inodes=60,
                           load=14.0, did=0)
        ledger = build_ledger(trace)
        (entry,) = ledger.entries
        assert entry.verdict == "neutral"
        assert entry.observed_epochs == 0

    def test_reexport_off_the_receiver_is_ping_pong(self):
        # unit 7 lands on rank 1 at epoch 2, gets planned straight back
        # off rank 1 three epochs later — thrash, whatever the load says
        trace = epochs([(30, 10, 0)] * 3 + [(16, 25, 0)] * 6)
        trace += migration(plan_tick=14, src=0, dst=1, unit=7, inodes=60,
                           load=14.0, did=0)
        trace.append(MigrationPlanned(tick=29, src=1, dst=2, unit=7,
                                      inodes=60, load=14.0, did=50))
        ledger = build_ledger(trace)
        entry = ledger.by_commit()[1]
        assert entry.verdict == "ping_pong"

    def test_reexport_outside_the_window_is_not_ping_pong(self):
        cfg = OutcomeConfig(pingpong_epochs=2)
        trace = epochs([(30, 10, 0)] * 3 + [(16, 25, 0)] * 20)
        trace += migration(plan_tick=14, src=0, dst=1, unit=7, inodes=60,
                           load=14.0, did=0)
        # epoch 2 + W(2) = 4; the re-plan happens at epoch ~14
        trace.append(MigrationPlanned(tick=74, src=1, dst=2, unit=7,
                                      inodes=60, load=14.0, did=50))
        ledger = build_ledger(trace, config=cfg)
        entry = ledger.by_commit()[1]
        assert entry.verdict == "paid_off"

    def test_verdict_vocabulary_is_closed(self):
        with pytest.raises(ValueError, match="unknown outcome verdict"):
            MigrationOutcome(epoch=0, src=0, dst=1, unit=7, inodes=1,
                             planned_load=1.0, realized=0.0, expected=1.0,
                             verdict="great", observed_epochs=1)


class TestWasteAccounting:
    def trace_with_abort(self):
        trace = epochs([(30, 10, 10)] * 8)
        # same planning round (epoch 2): one commit, one mds_failed abort
        trace += migration(plan_tick=14, src=0, dst=1, unit=7, inodes=60,
                           load=14.0, did=0)
        trace.append(MigrationPlanned(tick=14, src=0, dst=2, unit=9,
                                      inodes=33, load=8.0, did=10))
        trace.append(MigrationAborted(tick=16, src=0, dst=2, unit=9,
                                      reason="mds_failed", did=11, parent=10))
        return trace

    def test_aborted_sibling_inodes_charge_the_rounds_commits(self):
        ledger = build_ledger(self.trace_with_abort())
        (entry,) = ledger.entries
        assert entry.waste == 33
        assert ledger.aborted_tasks == 1 and ledger.aborted_inodes == 33

    def test_waste_splits_equally_with_remainder_to_earliest(self):
        trace = epochs([(30, 10, 10)] * 8)
        trace += migration(plan_tick=14, src=0, dst=1, unit=7, inodes=60,
                           load=14.0, did=0)
        trace += migration(plan_tick=14, src=0, dst=2, unit=8, inodes=40,
                           load=9.0, did=4)
        trace.append(MigrationPlanned(tick=14, src=0, dst=2, unit=9,
                                      inodes=33, load=8.0, did=10))
        trace.append(MigrationAborted(tick=16, src=0, dst=2, unit=9,
                                      reason="overlap", did=11, parent=10))
        ledger = build_ledger(trace)
        by_commit = ledger.by_commit()
        assert by_commit[1].waste == 17  # floor(33/2) + remainder 1
        assert by_commit[5].waste == 16

    def test_aborted_waste_matches_the_chaos_score_join(self):
        from repro.chaos.score import _aborted_waste

        trace = self.trace_with_abort()
        assert aborted_waste(trace, reason="mds_failed") == \
            _aborted_waste(trace)
        # reason=None counts every abort; the filtered slice is smaller
        trace.append(MigrationAborted(tick=17, src=0, dst=1, unit=12,
                                      reason="stale_auth", did=12))
        assert aborted_waste(trace) == (2, 33)
        assert aborted_waste(trace, reason="mds_failed") == (1, 33)

    def test_abort_with_evicted_plan_counts_zero_inodes(self):
        trace = epochs([(30, 10, 10)] * 3)
        trace.append(MigrationAborted(tick=16, src=0, dst=2, unit=9,
                                      reason="mds_failed", did=11, parent=10))
        assert aborted_waste(trace) == (1, 0)


class TestPartialLedger:
    def test_ring_evicted_plan_yields_a_neutral_partial_entry(self):
        # a ring trace that kept the commit but evicted its plan: the
        # entry must survive, flagged partial, judged neutral
        full = epochs([(30, 10, 0)] * 3 + [(16, 25, 0)] * 6)
        full += migration(plan_tick=14, src=0, dst=1, unit=7, inodes=60,
                          load=14.0, did=0)
        evicted = [e for e in full if e.etype != "migration_planned"]
        ledger = build_ledger(evicted)
        (entry,) = ledger.entries
        assert entry.partial is True
        assert entry.verdict == "neutral"
        assert entry.plan_did == 0 and 0 not in {
            e.did for e in evicted if hasattr(e, "did")}


class TestEmitAndProvenance:
    def ledger_and_log(self):
        trace = epochs([(30, 10, 0)] * 3 + [(16, 25, 0)] * 6)
        trace += migration(plan_tick=14, src=0, dst=1, unit=7, inodes=60,
                           load=14.0, did=0)
        ledger = build_ledger(trace)
        # allocator past the synthetic dids so outcome ids don't collide
        log = TraceLog(ids=DecisionIds(start=2000))
        for e in trace:
            log.emit(e)
        return trace, ledger, log

    def test_outcome_events_chain_commit_to_verdict(self):
        trace, ledger, log = self.ledger_and_log()
        n = emit_outcomes(log, ledger)
        assert n == 1
        graph = ProvenanceGraph(log.events())
        (outcome_did,) = graph.children[1]  # commit did 1 -> outcome
        node = graph.nodes[outcome_did]
        assert node.etype == "migration_outcome"
        assert node.verdict == "paid_off"
        # the full causal neighbourhood of the plan now ends in a verdict
        assert outcome_did in graph.chain_ids(0)

    def test_outcome_round_trips_with_non_default_fields(self):
        e = MigrationOutcome(epoch=3, src=0, dst=1, unit="frag:3:1:0",
                             inodes=60, planned_load=14.0, realized=7.0,
                             expected=70.0, verdict="wasted",
                             observed_epochs=5, did=9, parent=1,
                             waste=33, partial=True)
        s = event_to_json(e)
        assert '"waste":33' in s and '"partial":true' in s
        assert event_from_json(s) == e
        # defaults are omitted from the wire form entirely
        bare = MigrationOutcome(epoch=3, src=0, dst=1, unit=7, inodes=60,
                                planned_load=14.0, realized=7.0,
                                expected=70.0, verdict="wasted",
                                observed_epochs=5, did=9, parent=1)
        assert '"waste"' not in event_to_json(bare)
        assert '"partial"' not in event_to_json(bare)

    def test_filter_events_slices_outcomes_by_type_and_epoch(self):
        trace, ledger, log = self.ledger_and_log()
        emit_outcomes(log, ledger)
        only = filter_events(log.events(), etypes=["migration_outcome"])
        assert [e.etype for e in only] == ["migration_outcome"]
        # migration_outcome carries the commit epoch: range-sliceable
        assert filter_events(log.events(), etypes=["migration_outcome"],
                             epoch_range=(2, 2)) == only
        assert filter_events(log.events(), etypes=["migration_outcome"],
                             epoch_range=(3, 9)) == []


class TestExplainOutcomes:
    def test_explain_attaches_verdicts_and_summary(self):
        trace = epochs([(30, 10, 0)] * 3 + [(16, 25, 0)] * 6)
        trace += migration(plan_tick=14, src=0, dst=1, unit=7, inodes=60,
                           load=14.0, did=0)
        report = explain(trace, outcomes=True)
        (mig,) = [m for b in report["epochs"] for m in b["migrations"]]
        assert mig["verdict"] == "paid_off"
        assert mig["ratio"] == pytest.approx(1.0)
        assert report["summary"]["verdicts"] == {"paid_off": 1}
        text = render_explain(report)
        assert "verdict=paid_off" in text
        assert "verdicts: paid_off=1" in text

    def test_explain_without_outcomes_is_unchanged(self):
        trace = epochs([(30, 10, 0)] * 3)
        trace += migration(plan_tick=14, src=0, dst=1, unit=7, inodes=60,
                           load=14.0, did=0)
        report = explain(trace)
        (mig,) = [m for b in report["epochs"] for m in b["migrations"]]
        assert "verdict" not in mig
        assert "verdicts" not in report["summary"]

    def test_every_committed_migration_in_a_real_run_gets_a_verdict(self):
        # the fig6-shaped acceptance scenario: mdtest under lunule at the
        # golden scale, every migration_committed judged
        cfg = ExperimentConfig(
            workload="mdtest", balancer="lunule", n_clients=8, seed=7,
            scale=0.15,
            sim=SimConfig(n_mds=3, mds_capacity=60.0, epoch_len=5,
                          max_ticks=3000, migration_rate=50, seed=0))
        _, sim = run_traced(cfg)
        events = sim.trace.events()
        commits = [e for e in events if e.etype == "migration_committed"]
        assert commits, "scenario must migrate for the test to mean anything"
        report = explain(events, outcomes=True)
        migs = [m for b in report["epochs"] for m in b["migrations"]
                if m["outcome"] == "committed"]
        assert len(migs) == len(commits)
        assert all("verdict" in m for m in migs)
        ledger = build_ledger(events)
        assert len(ledger) == len(commits)
        assert ledger.to_dict()["schema"] == 1


class TestLedgerDocument:
    def test_to_dict_schema(self):
        trace = epochs([(30, 10, 0)] * 9)
        trace += migration(plan_tick=14, src=0, dst=1, unit=7, inodes=60,
                           load=14.0, did=0)
        doc = build_ledger(trace).to_dict()
        assert doc["schema"] == 1
        assert set(doc) == {"schema", "config", "entries", "verdicts",
                            "totals"}
        assert doc["config"] == {"benefit_epochs": 5, "pingpong_epochs": 10,
                                 "paid_off_ratio": 0.5, "neutral_ratio": 0.1}
        (entry,) = doc["entries"]
        assert entry["did"] == 1 and entry["verdict"] in (
            "paid_off", "neutral", "wasted", "ping_pong")
        assert doc["totals"]["migrations"] == 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OutcomeConfig(benefit_epochs=0)
        with pytest.raises(ValueError):
            OutcomeConfig(neutral_ratio=0.9, paid_off_ratio=0.5)

    def test_timeseries_columns_override_trace_loads(self):
        # trace loads say the receiver never moved; the recorded columns
        # say it did — the columns win
        trace = epochs([(30, 10, 0)] * 9)
        trace += migration(plan_tick=14, src=0, dst=1, unit=7, inodes=60,
                           load=14.0, did=0)
        columns = {
            "epoch": list(range(9)),
            "load.0": [30.0] * 3 + [16.0] * 6,
            "load.1": [10.0] * 3 + [25.0] * 6,
            "load.2": [0.0] * 9,
        }
        assert build_ledger(trace).entries[0].verdict == "wasted"
        assert build_ledger(
            trace, timeseries=columns).entries[0].verdict == "paid_off"
