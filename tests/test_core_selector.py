"""Subtree Selector: the three search paths and blocking rules."""

import numpy as np
import pytest

from repro.balancers.candidates import candidates_for
from repro.core.plan import EpochPlan, SplitDir
from repro.core.selector import SubtreeSelector
from repro.namespace.builder import build_fanout
from repro.namespace.dirfrag import FragId
from repro.namespace.subtree import AuthorityMap


def make_ns(n_dirs=6, files_per_dir=10):
    built = build_fanout(n_dirs, files_per_dir)
    return AuthorityMap(built.tree, 0), built


def cands(ns, loads: dict[int, float]):
    per_dir = np.zeros(ns.tree.n_dirs)
    for d, v in loads.items():
        per_dir[d] = v
    return candidates_for(ns, 0, per_dir)


def selector_for(ns, cs) -> SubtreeSelector:
    return SubtreeSelector(EpochPlan.from_authority(ns), cs)


class TestPathOne:
    def test_exact_match_single_subtree(self):
        ns, b = make_ns()
        cs = cands(ns, {b.dirs[0]: 50.0, b.dirs[1]: 20.0})
        sel = selector_for(ns, cs)
        plans = sel.select(52.0)  # within 10% of 50
        assert len(plans) == 1
        assert plans[0].unit == b.dirs[0]

    def test_prefers_not_overshooting_grossly(self):
        ns, b = make_ns()
        cs = cands(ns, {b.dirs[0]: 100.0, b.dirs[1]: 10.0})
        sel = selector_for(ns, cs)
        plans = sel.select(10.0)
        assert all(p.load <= 11.0 + 1e-9 for p in plans)


class TestPathTwoSplit:
    def test_flat_hot_dir_gets_fragmented(self):
        ns, b = make_ns(n_dirs=2)
        hot = b.dirs[0]
        cs = cands(ns, {hot: 80.0})
        sel = selector_for(ns, cs)
        plans = sel.select(20.0)
        assert plans, "selector found nothing to export"
        assert all(isinstance(p.unit, FragId) for p in plans)
        # The split is speculative — recorded on the plan, live map untouched.
        assert sel.plan.namespace.frag_state(hot) is not None
        assert ns.frag_state(hot) is None
        assert any(isinstance(a, SplitDir) and a.dir_id == hot
                   for a in sel.plan.actions)
        got = sum(p.load for p in plans)
        assert got == pytest.approx(20.0, rel=0.5)

    def test_frag_resplit_when_frag_too_big(self):
        ns, b = make_ns(n_dirs=2)
        hot = b.dirs[0]
        ns.split_dir(hot, 1)  # two frags of load 40 each
        cs = cands(ns, {hot: 80.0})
        sel = selector_for(ns, cs)
        plans = sel.select(15.0)
        assert plans
        bits = sel.plan.namespace.frag_state(hot)[0]
        assert bits == 2  # deepened by one level
        assert all(isinstance(p.unit, FragId) for p in plans)

    def test_nested_load_picks_descendants_not_split(self):
        ns, b = make_ns(n_dirs=8)
        # load lives in the children of the workload root: the root subtree
        # aggregates it but must not be frag-split (its own files are cold)
        loads = {d: 10.0 for d in b.dirs}
        cs = cands(ns, loads)
        sel = selector_for(ns, cs)
        plans = sel.select(30.0)
        got = sum(p.load for p in plans)
        assert got == pytest.approx(30.0, rel=0.15)
        assert all(p.unit in b.dirs for p in plans)


class TestPathThreeGreedy:
    def test_accumulates_minimal_set(self):
        ns, b = make_ns()
        loads = {b.dirs[i]: v for i, v in enumerate([40.0, 25.0, 12.0, 6.0, 3.0])}
        cs = cands(ns, loads)
        sel = selector_for(ns, cs)
        plans = sel.select(37.0)
        got = sum(p.load for p in plans)
        assert got == pytest.approx(37.0, rel=0.15)

    def test_zero_load_candidates_never_selected(self):
        ns, b = make_ns()
        cs = cands(ns, {b.dirs[0]: 10.0})
        sel = selector_for(ns, cs)
        plans = sel.select(50.0)
        assert all(p.load > 0 for p in plans)

    def test_zero_amount_selects_nothing(self):
        ns, b = make_ns()
        cs = cands(ns, {b.dirs[0]: 10.0})
        assert selector_for(ns, cs).select(0.0) == []


class TestBlocking:
    def test_unit_not_reused_across_decisions(self):
        ns, b = make_ns()
        loads = {b.dirs[i]: 20.0 for i in range(4)}
        cs = cands(ns, loads)
        sel = selector_for(ns, cs)
        first = sel.select(20.0)
        second = sel.select(20.0)
        assert first and second
        assert {p.unit for p in first}.isdisjoint({p.unit for p in second})

    def test_descendant_of_selected_blocked(self):
        ns, b = make_ns()
        loads = {d: 10.0 for d in b.dirs}
        cs = cands(ns, loads)
        sel = selector_for(ns, cs)
        # take the whole workload root (60 total across 6 dirs)
        plans = sel.select(60.0)
        taken = {p.unit for p in plans}
        more = sel.select(10.0)
        for p in more:
            for a in ns.tree.ancestors(p.unit if not isinstance(p.unit, FragId)
                                       else p.unit.dir_id):
                assert a not in taken

    def test_ancestor_of_selected_blocked(self):
        ns, b = make_ns()
        loads = {d: 10.0 for d in b.dirs}
        cs = cands(ns, loads)
        sel = selector_for(ns, cs)
        first = sel.select(10.0)  # one leaf dir
        assert len(first) == 1 and first[0].unit in b.dirs
        # now the parent (workload root) may not be exported wholesale
        second = sel.select(60.0)
        assert all(p.unit != ns.tree.parent[first[0].unit] for p in second)
