"""ChaosController: fault application, reversal, provenance, determinism.

Drives real simulator runs under chaos schedules and pins the ISSUE's
controller properties: a fixed seed makes the whole run byte-identical,
``slow_mds`` capacity factors restore *exactly* on clear, every fault
injected is eventually cleared, and ``mds_failed`` aborts carry a
``cause`` link back to the ``fault_injected`` decision that killed them.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.balancers import make_balancer
from repro.chaos import ChaosController
from repro.chaos.schedule import ChaosSchedule, FailMds, RandomFailures, SlowMds
from repro.cluster.simulator import SimConfig, Simulator
from repro.experiments.chaos import run_chaos
from repro.obs.events import NO_DECISION
from repro.workloads import ZipfWorkload

from tests.test_chaos_schedule import disjoint_events


def chaos_sim(events, *, seed=0, name="ctl", balancer="lunule",
              schedule=None, n_clients=6, reads=300, **overrides):
    chaos = ChaosController(
        ChaosSchedule(name=name, events=tuple(events)), seed=seed)
    wl = ZipfWorkload(n_clients, files_per_dir=40, reads_per_client=reads)
    cfg = SimConfig(n_mds=3, mds_capacity=50, epoch_len=5, max_ticks=4000,
                    migration_rate=10, seed=seed)
    if overrides:
        cfg = cfg.with_(**overrides)
    sim = Simulator(wl.materialize(seed=3), make_balancer(balancer), cfg,
                    schedule=schedule, chaos=chaos)
    return sim, chaos


def decisions(sim):
    """did -> event for every decision-bearing event in the trace."""
    return {e.did: e for e in sim.trace
            if getattr(e, "did", NO_DECISION) != NO_DECISION}


class TestBinding:
    def test_two_entries_per_window(self):
        sim, chaos = chaos_sim([FailMds(rank=0, at_epoch=2),
                                SlowMds(rank=1, at_epoch=5)])
        assert len(chaos.windows) == 2
        # bind already ran inside Simulator.__init__; re-binding is pure
        entries = chaos.bind(sim)
        assert len(entries) == 2 * len(chaos.windows)
        assert [t for t, _ in entries] == sorted(t for t, _ in entries)

    def test_inject_tick_is_first_tick_inside_epoch(self):
        sim, _ = chaos_sim([FailMds(rank=0, at_epoch=3, duration=2)])
        sim.run()
        (inj,) = sim.trace.events("fault_injected")
        (clr,) = sim.trace.events("fault_cleared")
        assert (inj.tick, inj.epoch) == (3 * 5 + 1, 3)
        assert (clr.tick, clr.epoch) == (5 * 5 + 1, 5)

    def test_clear_precedes_inject_at_shared_tick(self):
        # rank 0's clear and rank 1's inject both fire at tick 21
        sim, _ = chaos_sim([FailMds(rank=0, at_epoch=2, duration=2),
                            FailMds(rank=1, at_epoch=4, duration=1)])
        sim.run()
        shared = [e for e in sim.trace
                  if e.etype in ("fault_injected", "fault_cleared")
                  and e.tick == 21]
        assert [e.etype for e in shared] == ["fault_cleared",
                                             "fault_injected"]

    def test_first_fault_epoch(self):
        _, chaos = chaos_sim([FailMds(rank=2, at_epoch=7),
                              SlowMds(rank=0, at_epoch=3)])
        assert chaos.first_fault_epoch() == 3


class TestFaultLifecycle:
    def test_every_injection_cleared(self):
        sim, chaos = chaos_sim([FailMds(rank=0, at_epoch=2),
                                SlowMds(rank=1, at_epoch=6, factor=0.3),
                                FailMds(rank=2, at_epoch=10)])
        sim.run()
        assert chaos.faults_injected == chaos.faults_cleared == 3
        counts = sim.trace.counts()
        assert counts["fault_injected"] == counts["fault_cleared"] == 3

    def test_cleared_event_parents_to_injection(self):
        sim, chaos = chaos_sim([FailMds(rank=0, at_epoch=2)])
        sim.run()
        (w,) = chaos.windows
        (clr,) = sim.trace.events("fault_cleared")
        assert clr.parent == chaos.inject_id(w) != NO_DECISION

    def test_inject_id_unknown_window_is_no_decision(self):
        _, chaos = chaos_sim([FailMds(rank=0, at_epoch=2)])
        (w,) = chaos.windows
        assert chaos.inject_id(w) == NO_DECISION  # not fired yet

    def test_fail_window_emits_mds_failed(self):
        sim, _ = chaos_sim([FailMds(rank=1, at_epoch=2, duration=2)])
        sim.run()
        failed = sim.trace.events("mds_failed")
        assert [e.rank for e in failed] == [1]

    def test_clients_finish_despite_faults(self):
        sim, _ = chaos_sim([FailMds(rank=0, at_epoch=2, duration=2)])
        res = sim.run()
        assert len(res.completion_ticks) == 6

    def test_inode_totals_survive_chaos(self):
        sim, _ = chaos_sim([FailMds(rank=0, at_epoch=2, duration=2),
                            FailMds(rank=1, at_epoch=6)],
                           migration_rate=5)
        res = sim.run()
        total = sim.tree.n_dirs + sim.tree.total_files()
        assert sum(res.inode_distribution) == total


class TestAbortProvenance:
    def test_mds_failed_aborts_carry_fault_cause(self):
        # migration_rate=5 stretches transfers so the epoch-2 failure of
        # rank 0 (initial authority holder) lands mid-export
        sim, chaos = chaos_sim([FailMds(rank=0, at_epoch=2, duration=2)],
                               migration_rate=5)
        sim.run()
        aborts = [e for e in sim.trace.events("migration_aborted")
                  if e.reason == "mds_failed"]
        assert aborts, "failure did not catch any migration in flight"
        (w,) = chaos.windows
        by_did = decisions(sim)
        for e in aborts:
            assert e.cause == chaos.inject_id(w)
            assert by_did[e.cause].etype == "fault_injected"

    def test_voluntary_aborts_have_no_cause(self):
        sim, _ = chaos_sim([SlowMds(rank=1, at_epoch=2, factor=0.5)])
        sim.run()
        for e in sim.trace.events("migration_aborted"):
            if e.reason != "mds_failed":
                assert e.cause == NO_DECISION


class TestSlowMds:
    def test_capacity_scaled_during_window(self):
        seen = {}
        probe = [(18, lambda s: seen.update(mid=s.mdss[1].capacity))]
        sim, _ = chaos_sim([SlowMds(rank=1, at_epoch=2, duration=2,
                                    factor=0.4)], schedule=probe)
        sim.run()
        assert seen["mid"] == 50.0 * 0.4

    def test_capacity_restored_exactly(self):
        sim, _ = chaos_sim([SlowMds(rank=1, at_epoch=2, factor=0.3)])
        before = [m.capacity for m in sim.mdss]
        sim.run()
        assert [m.capacity for m in sim.mdss] == before

    @given(factor=st.floats(0.05, 0.95, allow_nan=False),
           seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_restore_exact_for_any_factor(self, factor, seed):
        # the saved float comes back bit-for-bit, not via dividing out the
        # factor (0.3 * x / 0.3 != x in binary floats)
        sim, chaos = chaos_sim([SlowMds(rank=2, at_epoch=1, duration=2,
                                        factor=factor)],
                               seed=seed, n_clients=3, reads=80,
                               max_ticks=1500)
        before = [m.capacity for m in sim.mdss]
        sim.run()
        assert chaos.faults_cleared == 1
        assert [m.capacity for m in sim.mdss] == before


class TestDeterminism:
    @given(events=disjoint_events(), seed=st.integers(0, 50))
    @settings(max_examples=6, deadline=None)
    def test_fixed_seed_gives_byte_identical_trace(self, events, seed):
        runs = []
        for _ in range(2):
            sim, _ = chaos_sim(events, seed=seed, n_clients=3, reads=80,
                               max_ticks=1500)
            sim.run()
            runs.append(sim.trace.dumps())
        assert runs[0] == runs[1]

    @given(events=disjoint_events(), seed=st.integers(0, 50))
    @settings(max_examples=8, deadline=None)
    def test_lifecycle_invariants_for_any_schedule(self, events, seed):
        sim, chaos = chaos_sim(events, seed=seed, n_clients=3, reads=80,
                               max_ticks=1500)
        before = [m.capacity for m in sim.mdss]
        sim.run()
        assert chaos.faults_injected == chaos.faults_cleared == len(
            chaos.windows)
        assert [m.capacity for m in sim.mdss] == before

    def test_stochastic_schedule_deterministic_end_to_end(self):
        traces = []
        for _ in range(2):
            sim, _ = chaos_sim([RandomFailures(2, 1, 12)], seed=9,
                               name="storm-det", n_clients=3, reads=80,
                               max_ticks=1500)
            sim.run()
            traces.append(sim.trace.dumps())
        assert traces[0] == traces[1]


class TestRunChaos:
    def test_flap_seed1_reproduces_trace_and_report(self):
        # the PR's acceptance criterion, as a regression test
        r1, _, s1 = run_chaos("flap", seed=1)
        r2, _, s2 = run_chaos("flap", seed=1)
        assert s1.trace.dumps() == s2.trace.dumps()
        assert (json.dumps(r1, sort_keys=True)
                == json.dumps(r2, sort_keys=True))

    def test_report_shape(self):
        report, _, _ = run_chaos("blackout", seed=2, balancer="greedyspill")
        assert report["schema"] == 1
        assert report["scenario"]["name"] == "blackout"
        assert report["run"]["balancer"] == "greedyspill"
        assert report["faults_injected"] == report["faults_cleared"] > 0
        assert len(report["windows"]) == report["faults_injected"]
        score = report["score"]
        assert {"faults", "mean_recovery_epochs", "unrecovered_faults",
                "aborted_inodes", "aborted_tasks",
                "if_overshoot_area"} <= set(score)
