"""The result-validation utility."""

import pytest

from repro.balancers import make_balancer
from repro.cluster.simulator import SimConfig, Simulator
from repro.experiments.validation import ValidationReport, validate
from repro.workloads import MdtestWorkload, ZipfWorkload


def run_sim(balancer="lunule", workload=None, **overrides):
    wl = workload or ZipfWorkload(6, files_per_dir=40, reads_per_client=300)
    cfg = SimConfig(n_mds=3, mds_capacity=50, epoch_len=5, max_ticks=4000)
    if overrides:
        cfg = cfg.with_(**overrides)
    sim = Simulator(wl.materialize(seed=4), make_balancer(balancer), cfg)
    return sim, sim.run()


class TestValidationPasses:
    @pytest.mark.parametrize("balancer", ["nop", "vanilla", "greedyspill",
                                          "dirhash", "lunule", "lunule-light"])
    def test_every_balancer_validates(self, balancer):
        sim, res = run_sim(balancer)
        report = validate(sim, res)
        assert report.ok, report.problems

    def test_creates_validate(self):
        sim, res = run_sim("lunule", workload=MdtestWorkload(4, creates_per_client=400))
        assert validate(sim, res).ok

    def test_data_path_validates(self):
        sim, res = run_sim("lunule", data_path=True)
        assert validate(sim, res).ok

    def test_raise_if_failed_noop_when_ok(self):
        sim, res = run_sim("nop")
        validate(sim, res).raise_if_failed()


class TestValidationCatchesCorruption:
    def test_detects_served_mismatch(self):
        sim, res = run_sim("nop")
        res.served_per_mds[0] += 5
        report = validate(sim, res)
        assert not report.ok
        assert any("ops served" in p for p in report.problems)

    def test_detects_inode_leak(self):
        sim, res = run_sim("nop")
        res.inode_distribution[0] -= 1
        assert not validate(sim, res).ok

    def test_detects_if_out_of_range(self):
        sim, res = run_sim("nop")
        res.if_series[0] = 1.5
        report = validate(sim, res)
        assert any("imbalance factor" in p for p in report.problems)

    def test_detects_non_cumulative_migration(self):
        sim, res = run_sim("lunule")
        if len(res.migrated_series) >= 2:
            res.migrated_series[-1] = 0
        report = validate(sim, res)
        assert not report.ok

    def test_detects_capacity_violation(self):
        sim, res = run_sim("nop")
        res.per_mds_iops[0][0] = 10_000.0
        assert any("capacity" in p for p in validate(sim, res).problems)

    def test_raise_if_failed_raises(self):
        sim, res = run_sim("nop")
        res.meta_ops += 1
        with pytest.raises(AssertionError):
            validate(sim, res).raise_if_failed()


class TestReport:
    def test_expect_collects(self):
        rep = ValidationReport()
        rep.expect(True, "fine")
        rep.expect(False, "broken")
        assert not rep.ok
        assert rep.problems == ["broken"]
