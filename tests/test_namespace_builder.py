"""Namespace builders."""

import pytest

from repro.namespace.builder import (
    build_corpus,
    build_fanout,
    build_private_dirs,
    build_web,
    merge_builds,
)
from repro.namespace.tree import NamespaceTree


class TestFanout:
    def test_shape(self, fanout_tree):
        assert len(fanout_tree.dirs) == 20
        assert all(f == 10 for f in fanout_tree.files)
        assert fanout_tree.total_files() == 200

    def test_dirs_are_siblings(self, fanout_tree):
        t = fanout_tree.tree
        parents = {t.parent[d] for d in fanout_tree.dirs}
        assert parents == {fanout_tree.root}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_fanout(0, 10)


class TestCorpus:
    def test_total_roughly_preserved(self):
        b = build_corpus(14, 5000, seed=1)
        assert len(b.dirs) == 14
        assert abs(b.total_files() - 5000) < 150  # rounding slack

    def test_sizes_are_skewed(self):
        b = build_corpus(14, 5000, skew=1.4, seed=1)
        assert max(b.files) > 5 * min(b.files)

    def test_no_empty_folder(self):
        b = build_corpus(14, 5000, seed=2)
        assert min(b.files) >= 1

    def test_deterministic(self):
        a = build_corpus(10, 1000, seed=3)
        b = build_corpus(10, 1000, seed=3)
        assert a.files == b.files

    def test_rejects_too_few_files(self):
        with pytest.raises(ValueError):
            build_corpus(10, 5)


class TestWeb:
    def test_two_level_nesting(self):
        b = build_web(4, 3, 500, seed=1)
        assert len(b.dirs) == 12
        t = b.tree
        for d in b.dirs:
            assert t.depth[d] == t.depth[b.root] + 2

    def test_pareto_sizes(self):
        b = build_web(10, 5, 5000, seed=1)
        assert max(b.files) > 3 * (sum(b.files) / len(b.files))

    def test_rejects_bad_fanout(self):
        with pytest.raises(ValueError):
            build_web(0, 3, 100)


class TestPrivateDirs:
    def test_one_dir_per_client(self, private_tree):
        assert len(private_tree.dirs) == 8
        assert all(f == 50 for f in private_tree.files)

    def test_zero_files_allowed(self):
        b = build_private_dirs(4, 0)
        assert b.total_files() == 0

    def test_rejects_no_clients(self):
        with pytest.raises(ValueError):
            build_private_dirs(0, 10)


class TestMerge:
    def test_shared_tree_ok(self):
        t = NamespaceTree()
        a = build_fanout(3, 5, tree=t)
        b = build_private_dirs(2, 5, tree=t)
        assert merge_builds(a, b) is t

    def test_disjoint_trees_rejected(self):
        a = build_fanout(3, 5)
        b = build_private_dirs(2, 5)
        with pytest.raises(ValueError):
            merge_builds(a, b)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_builds()
