"""AuthorityMap: resolution, caching, fragmentation, distributions."""

import pytest

from repro.namespace.dirfrag import FragId


class TestResolve:
    def test_everything_on_initial_mds(self, authmap):
        for d in range(authmap.tree.n_dirs):
            assert authmap.resolve_dir(d) == (0, 0)

    def test_nested_subtree_wins(self, authmap):
        authmap.set_subtree_auth(2, 1)
        assert authmap.resolve_dir(3) == (1, 2)
        assert authmap.resolve_dir(1) == (0, 0)

    def test_deeper_root_overrides(self, authmap):
        authmap.set_subtree_auth(2, 1)
        authmap.set_subtree_auth(3, 2)
        assert authmap.resolve_dir(3) == (2, 3)
        assert authmap.resolve_dir(4) == (1, 2)

    def test_resolve_file_defaults_to_dir(self, authmap):
        assert authmap.resolve(1, 0) == 0

    def test_cache_invalidated_on_change(self, authmap):
        assert authmap.resolve_dir(3)[0] == 0
        authmap.set_subtree_auth(2, 1)
        assert authmap.resolve_dir(3)[0] == 1

    def test_negative_rank_rejected(self, authmap):
        with pytest.raises(ValueError):
            authmap.set_subtree_auth(1, -1)

    def test_version_bumps(self, authmap):
        v = authmap.version
        authmap.set_subtree_auth(1, 1)
        assert authmap.version > v


class TestRoots:
    def test_drop_merges_back(self, authmap):
        authmap.set_subtree_auth(2, 1)
        authmap.drop_subtree_root(2)
        assert authmap.resolve_dir(3) == (0, 0)

    def test_drop_root_dir_forbidden(self, authmap):
        with pytest.raises(ValueError):
            authmap.drop_subtree_root(0)

    def test_subtrees_of(self, authmap):
        authmap.set_subtree_auth(1, 1)
        authmap.set_subtree_auth(3, 1)
        assert authmap.subtrees_of(1) == [1, 3]
        assert authmap.subtrees_of(0) == [0]

    def test_extent_excludes_nested(self, authmap):
        authmap.set_subtree_auth(2, 1)
        assert sorted(authmap.extent(0)) == [0, 1]
        assert sorted(authmap.extent(2)) == [2, 3, 4]

    def test_extent_requires_root(self, authmap):
        with pytest.raises(ValueError):
            authmap.extent(1)


class TestFrags:
    def test_split_keeps_current_auth(self, authmap):
        frags = authmap.split_dir(3, 1)
        assert len(frags) == 2
        for f in frags:
            assert authmap.resolve(3, f.frag_no) == 0

    def test_set_frag_auth_routes_files(self, authmap):
        authmap.split_dir(3, 1)
        authmap.set_frag_auth(FragId(3, 1, 1), 2)
        assert authmap.resolve(3, 1) == 2
        assert authmap.resolve(3, 3) == 2
        assert authmap.resolve(3, 0) == 0
        # the dir inode itself stays with the subtree authority
        assert authmap.resolve(3, -1) == 0

    def test_set_frag_auth_requires_matching_split(self, authmap):
        with pytest.raises(ValueError):
            authmap.set_frag_auth(FragId(3, 1, 0), 1)
        authmap.split_dir(3, 1)
        with pytest.raises(ValueError):
            authmap.set_frag_auth(FragId(3, 2, 0), 1)

    def test_resplit_inherits_owner(self, authmap):
        authmap.split_dir(3, 1)
        authmap.set_frag_auth(FragId(3, 1, 1), 2)
        authmap.split_dir(3, 2)
        # sub-frags of frag 1 (i.e. 1 and 3) keep owner 2
        assert authmap.resolve(3, 1) == 2
        assert authmap.resolve(3, 3) == 2
        assert authmap.resolve(3, 0) == 0
        assert authmap.resolve(3, 2) == 0

    def test_frag_state(self, authmap):
        assert authmap.frag_state(3) is None
        authmap.split_dir(3, 2)
        bits, owners = authmap.frag_state(3)
        assert bits == 2 and set(owners) == {0, 1, 2, 3}

    def test_frags_of(self, authmap):
        authmap.split_dir(3, 1)
        authmap.set_frag_auth(FragId(3, 1, 0), 1)
        assert authmap.frags_of(1) == [FragId(3, 1, 0)]

    def test_split_needs_positive_bits(self, authmap):
        with pytest.raises(ValueError):
            authmap.split_dir(3, 0)


class TestInodeDistribution:
    def test_all_on_zero_initially(self, authmap):
        dist = authmap.inode_distribution(3)
        assert dist == [authmap.tree.total_files() + authmap.tree.n_dirs, 0, 0]

    def test_total_preserved_under_any_partition(self, authmap):
        total = sum(authmap.inode_distribution(3))
        authmap.set_subtree_auth(2, 1)
        authmap.split_dir(1, 1)
        authmap.set_frag_auth(FragId(1, 1, 0), 2)
        dist = authmap.inode_distribution(3)
        assert sum(dist) == total
        assert dist[2] >= 1  # received frag files

    def test_frag_files_attributed_to_owner(self, authmap):
        # dir 3 has 4 files; give half to MDS 2
        authmap.split_dir(3, 1)
        authmap.set_frag_auth(FragId(3, 1, 1), 2)
        dist = authmap.inode_distribution(3)
        assert dist[2] == 2
