"""The flight recorder end to end: simulator sampling, span phases,
Perfetto validity, artifact round-trips and run reports."""

from __future__ import annotations

import json

import pytest

from repro.experiments.recording import ARTIFACT_FILES, load_run_artifacts, write_run_artifacts
from repro.obs.aggregate import merge_metrics_snapshots
from repro.obs.prom import parse_openmetrics
from repro.obs.report import render_html, render_run_report, sparkline
from repro.obs.registry import MetricsRegistry


@pytest.fixture
def recorded(make_sim):
    sim = make_sim("lunule", record=True)
    res = sim.run()
    return sim, res


class TestSimulatorSampling:
    def test_recorder_is_off_by_default(self, make_sim):
        sim = make_sim("lunule")
        sim.run()
        assert sim.recorder is None

    def test_one_row_per_epoch(self, recorded):
        sim, res = recorded
        assert len(sim.recorder.timeseries) == len(res.if_series)
        assert sim.recorder.samples == len(res.if_series)

    def test_core_columns_present(self, recorded):
        sim, _ = recorded
        cols = set(sim.recorder.timeseries.columns())
        assert {"epoch", "tick", "if", "urgency", "ops", "latency",
                "migrated", "forwards", "queue"} <= cols
        for rank in range(sim.n_mds):
            assert f"load.{rank}" in cols
            assert f"queue.{rank}" in cols

    def test_if_column_matches_result_series(self, recorded):
        sim, res = recorded
        assert sim.recorder.timeseries.column("if") == res.if_series

    def test_migrated_column_matches_result_series(self, recorded):
        sim, res = recorded
        assert sim.recorder.timeseries.column("migrated") == res.migrated_series

    def test_recording_does_not_change_decisions(self, make_sim):
        plain = make_sim("lunule")
        plain.run()
        rec = make_sim("lunule", record=True)
        rec.run()
        assert rec.trace.dumps() == plain.trace.dumps()

    def test_ring_capacity_bounds_epoch_memory(self, make_sim):
        sim = make_sim("lunule", record=True, record_capacity=3)
        res = sim.run()
        ts = sim.recorder.timeseries
        assert len(ts) == min(3, len(res.if_series))
        assert ts.appended == len(res.if_series)
        assert ts.column("if") == res.if_series[-3:]


class TestSpanPhases:
    def test_expected_phases_cover_the_run(self, recorded):
        sim, res = recorded
        totals = sim.recorder.spans.totals()
        n_epochs = len(res.if_series)
        assert totals["setup"]["count"] == 1
        assert totals["epoch"]["count"] == n_epochs
        assert totals["snapshot_view"]["count"] == n_epochs
        assert totals["plan"]["count"] == n_epochs
        assert totals["apply_plan"]["count"] == n_epochs
        assert totals["serve"]["count"] == totals["migration"]["count"]

    def test_run_stopped_mid_epoch_still_exports(self, make_sim):
        # max_ticks not a multiple of epoch_len leaves the epoch span open
        sim = make_sim("lunule", record=True, max_ticks=13, stop_when_done=False)
        sim.run()
        assert sim.recorder.spans.depth == 0
        assert sim.recorder.spans.events()  # does not raise

    def test_wall_clock_mode_runs(self, make_sim):
        sim = make_sim("lunule", record=True, record_clock="wall")
        sim.run()
        stamps = [e["ts"] for e in sim.recorder.spans.events()]
        assert stamps == sorted(stamps)


class TestPerfettoValidity:
    def test_events_are_structurally_valid_and_nested(self, recorded):
        sim, _ = recorded
        doc = json.loads(sim.recorder.spans.dumps_perfetto())
        assert "traceEvents" in doc
        stack = []
        for event in doc["traceEvents"]:
            assert {"ph", "ts", "pid", "name"} <= set(event)
            if event["ph"] == "B":
                stack.append(event["name"])
            elif event["ph"] == "E":
                assert stack, "E event with nothing open"
                assert stack.pop() == event["name"], "interleaved B/E pair"
        assert stack == [], "unclosed B events in the export"

    def test_two_runs_export_identical_bytes(self, make_sim):
        a = make_sim("lunule", record=True)
        a.run()
        b = make_sim("lunule", record=True)
        b.run()
        assert a.recorder.spans.dumps_perfetto() == b.recorder.spans.dumps_perfetto()
        assert a.recorder.timeseries.dumps_csv() == b.recorder.timeseries.dumps_csv()


class TestArtifacts:
    def test_round_trip(self, recorded, tmp_path):
        sim, res = recorded
        run_dir = tmp_path / "flight"
        paths = write_run_artifacts(run_dir, sim, res, extra_meta={"seed": 1})
        assert set(paths) == set(ARTIFACT_FILES)
        loaded = load_run_artifacts(run_dir)
        assert loaded["meta"]["balancer"] == res.balancer
        assert loaded["meta"]["seed"] == 1
        assert loaded["timeseries"] == sim.recorder.timeseries.snapshot()
        assert [e for e in loaded["events"]] == sim.trace.events()
        assert loaded["metrics"] == sim.metrics.snapshot()
        assert loaded["span_events"] == sim.recorder.spans.events()

    def test_prom_artifact_parses(self, recorded, tmp_path):
        sim, res = recorded
        paths = write_run_artifacts(tmp_path / "flight", sim, res)
        with open(paths["metrics_prom"], encoding="utf-8") as fh:
            families = parse_openmetrics(fh.read())
        assert "sim_epochs" in families

    def test_unrecorded_sim_is_rejected(self, make_sim, tmp_path):
        sim = make_sim("lunule")
        res = sim.run()
        with pytest.raises(ValueError, match="record=True"):
            write_run_artifacts(tmp_path / "flight", sim, res)

    def test_loading_a_non_artifact_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="repro run --record"):
            load_run_artifacts(tmp_path)


class TestRunReport:
    def test_report_has_every_section(self, recorded, tmp_path):
        sim, res = recorded
        run_dir = tmp_path / "flight"
        write_run_artifacts(run_dir, sim, res)
        loaded = load_run_artifacts(run_dir)
        report = render_run_report(
            loaded["meta"], timeseries=loaded["timeseries"],
            events=loaded["events"], metrics=loaded["metrics"],
            span_events=loaded["span_events"])
        for heading in ("# Run report", "## Imbalance-factor trajectory",
                        "## Per-MDS load", "## Migration summary",
                        "## Phase-time breakdown", "## Counters"):
            assert heading in report

    def test_report_degrades_to_present_data(self):
        report = render_run_report({"workload": "zipf", "balancer": "lunule"})
        assert "# Run report" in report
        assert "## Imbalance-factor trajectory" not in report

    def test_html_wraps_and_escapes(self):
        page = render_html("# A <report> & more", title="zipf <x>")
        assert page.startswith("<!doctype html>")
        assert "&lt;report&gt;" in page
        assert "zipf &lt;x&gt;" in page

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁" and line[-1] == "█"
        assert sparkline([0.0, None, 1.0])[1] == " "


class TestMetricsMerge:
    def test_counters_sum_and_gauges_take_the_last_value(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("ops", mds=0).inc(3)
        b.counter("ops", mds=0).inc(4)
        b.counter("ops", mds=1).inc(5)
        a.gauge("if").set(0.9)
        b.gauge("if").set(0.1)
        merged = merge_metrics_snapshots([a.snapshot(), b.snapshot()])
        assert [s["value"] for s in merged["ops"]["series"]] == [7.0, 5.0]
        assert merged["if"]["series"][0]["value"] == 0.1

    def test_histograms_sum_bucket_by_bucket(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, values in ((a, (0.5, 5.0)), (b, (0.7, 50.0))):
            h = reg.histogram("lat", buckets=(1.0, 10.0))
            for v in values:
                h.observe(v)
        merged = merge_metrics_snapshots([a.snapshot(), b.snapshot()])
        series = merged["lat"]["series"][0]
        assert series["buckets"] == {"1.0": 2, "10.0": 3, "+Inf": 4}
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(56.2)

    def test_kind_conflict_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        b.gauge("x").set(1.0)
        with pytest.raises(ValueError, match="counter"):
            merge_metrics_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_of_one_is_identity_modulo_order(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a").set(1.0)
        merged = merge_metrics_snapshots([reg.snapshot()])
        assert merged == dict(sorted(reg.snapshot().items()))
