"""Engine-level tests: suppressions, reporters, rule selection, the CLI."""

import io
import json
import pathlib

import pytest

from repro.cli import main
from repro.lint import (
    ERROR,
    Finding,
    all_rules,
    lint_paths,
    parse_json,
    render_json,
    render_text,
)
from repro.lint.engine import PARSE_ERROR, UNUSED_SUPPRESSION

FIXTURES = pathlib.Path(__file__).resolve().parent / "lint_fixtures"
SUPPRESS = FIXTURES / "suppress"


def _suppress_result():
    return lint_paths([SUPPRESS], rules=["wall-clock"], root=SUPPRESS)


# ------------------------------------------------------------- suppressions
def test_inline_suppression_silences_the_finding():
    result = _suppress_result()
    assert not any(f.path.endswith("suppressed.py") for f in result.findings)


def test_unused_suppressions_are_reported():
    result = _suppress_result()
    unused = [f for f in result.findings if f.rule == UNUSED_SUPPRESSION]
    assert sorted(f.line for f in unused) == [5, 9]
    by_line = {f.line: f.message for f in unused}
    assert "wall-clock" in by_line[5]
    assert "no such rule" not in by_line[5]
    assert "wall-clok" in by_line[9]
    assert "no such rule" in by_line[9]  # typo'd id gets the extra hint


# ----------------------------------------------------------------- findings
def test_finding_round_trips_through_dict():
    f = Finding(path="a.py", line=3, col=7, rule="wall-clock", message="m")
    assert Finding.from_dict(f.to_dict()) == f
    assert f.location == "a.py:3:7"
    assert f.severity == ERROR


def test_finding_rejects_unknown_severity():
    with pytest.raises(ValueError, match="severity"):
        Finding(path="a.py", line=1, col=1, rule="r", message="m",
                severity="fatal")


def test_findings_are_reported_in_stable_order():
    result = lint_paths([FIXTURES / "determinism"],
                        root=FIXTURES / "determinism")
    assert result.findings == sorted(result.findings)


# ---------------------------------------------------------------- reporters
def test_json_report_round_trips_through_json_loads():
    result = _suppress_result()
    payload = json.loads(render_json(result))
    assert payload["exit_code"] == result.exit_code
    assert payload["checked"] == result.checked
    assert parse_json(render_json(result)) == result.findings


def test_text_report_carries_location_rule_and_summary():
    result = _suppress_result()
    text = render_text(result)
    for f in result.findings:
        assert f"{f.location}: {f.severity}: " in text
        assert f"[{f.rule}]" in text
    assert text.endswith("error(s), 0 warning(s)\n")


# ------------------------------------------------------------ rule registry
def test_unknown_rule_id_raises():
    with pytest.raises(ValueError, match="unknown rule"):
        lint_paths([SUPPRESS], rules=["wall-clok"])


def test_registry_ids_are_kebab_case_and_described():
    rules = all_rules()
    assert len(rules) >= 9
    for rid, rule in rules.items():
        assert rid == rule.id
        assert rid == rid.lower() and " " not in rid
        assert rule.description


def test_parse_error_becomes_a_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n", encoding="utf-8")
    result = lint_paths([bad], root=tmp_path)
    (finding,) = result.findings
    assert finding.rule == PARSE_ERROR
    assert result.exit_code == 1
    assert result.checked == 0


# ----------------------------------------------------------------- CLI face
def test_cli_lint_json_on_fixture_exits_nonzero():
    out = io.StringIO()
    rc = main(["lint", str(FIXTURES / "determinism"),
               "--rule", "wall-clock", "--format", "json"], out=out)
    assert rc == 1
    payload = json.loads(out.getvalue())
    assert any(f["rule"] == "wall-clock" for f in payload["findings"])


def test_cli_lint_clean_tree_exits_zero():
    out = io.StringIO()
    repo = pathlib.Path(__file__).resolve().parents[1]
    rc = main(["lint", str(repo / "src" / "repro" / "util")], out=out)
    assert rc == 0
    assert "0 error(s)" in out.getvalue()


def test_cli_lint_unknown_rule_exits_two(capsys):
    rc = main(["lint", str(SUPPRESS), "--rule", "nope"], out=io.StringIO())
    assert rc == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_list_rules():
    out = io.StringIO()
    assert main(["lint", "--list-rules"], out=out) == 0
    text = out.getvalue()
    for rid in ("wall-clock", "layer-dag", "trace-schema", "float-eq"):
        assert rid in text
