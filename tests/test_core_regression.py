"""Load prediction on short histories; mindex alpha/beta boundary values."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.stats import AccessStats
from repro.core.pattern import PatternSnapshot, analyze
from repro.core.regression import DEFAULT_HISTORY, predict_future_load
from repro.namespace.tree import NamespaceTree
from repro.util.stats import linear_regression_predict


class TestShortHistories:
    def test_empty_history_predicts_zero(self):
        assert predict_future_load([]) == 0.0

    def test_single_point_predicts_itself(self):
        assert predict_future_load([42.0]) == 42.0

    def test_single_negative_point_clamps_to_zero(self):
        assert linear_regression_predict([-5.0]) == 0.0

    def test_two_points_extrapolate_linearly(self):
        assert predict_future_load([1.0, 3.0]) == pytest.approx(5.0)
        assert predict_future_load([10.0, 7.0]) == pytest.approx(4.0)

    def test_flat_history_predicts_the_level(self):
        assert predict_future_load([4.0, 4.0, 4.0]) == pytest.approx(4.0)

    def test_crashing_history_clamps_at_zero(self):
        # raw extrapolation of [10, 0] is -10; a negative load is meaningless
        assert predict_future_load([10.0, 0.0]) == 0.0


class TestWindowHandling:
    def test_window_one_uses_only_the_last_observation(self):
        assert predict_future_load([0.0, 0.0, 100.0], window=1) == 100.0

    def test_window_trims_old_history(self):
        # rising tail [2, 3] extrapolates to 4; the window must have
        # dropped the huge stale head
        assert predict_future_load([1000.0, 2.0, 3.0], window=2) == pytest.approx(4.0)

    def test_window_larger_than_history_is_fine(self):
        assert predict_future_load([1.0, 3.0], window=DEFAULT_HISTORY) == pytest.approx(5.0)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ValueError):
            predict_future_load([1.0], window=0)
        with pytest.raises(ValueError):
            predict_future_load([1.0], window=-3)


def stats_for(n_files: int = 10) -> tuple[AccessStats, int]:
    tree = NamespaceTree()
    d = tree.add_dir(0, "d")
    tree.add_files(d, n_files)
    # sibling_probability=0 keeps l_s deterministic (no sibling bonus)
    stats = AccessStats(tree, pattern_windows=1, sibling_probability=0.0)
    return stats, d


class TestMindexBoundaries:
    def test_untouched_stock_pins_beta_at_one(self):
        # one first visit against 9 unvisited files: beta saturates at 1
        stats, d = stats_for(10)
        stats.record_file_access(d, 0)
        stats.end_epoch()
        snap = analyze(stats)
        assert snap.beta[d] == 1.0
        assert snap.alpha[d] == 0.0  # nothing recurrent yet
        assert snap.mindex[d] == pytest.approx(snap.l_s[d])

    def test_fully_scanned_directory_has_beta_zero(self):
        stats, d = stats_for(4)
        for epoch in range(2):
            for idx in range(4):
                stats.record_file_access(d, idx)
            stats.end_epoch()
        snap = analyze(stats)
        # second epoch: every file re-visited inside the recurrence window,
        # no unvisited stock left -> pure temporal locality
        assert snap.beta[d] == 0.0
        assert snap.alpha[d] == 1.0
        assert snap.mindex[d] == pytest.approx(snap.l_t[d])

    def test_scan_workload_has_alpha_zero(self):
        # each epoch touches fresh files only: no recurrence at all
        stats, d = stats_for(8)
        for epoch in range(2):
            for idx in range(4):
                stats.record_file_access(d, 4 * epoch + idx)
            stats.end_epoch()
        snap = analyze(stats)
        assert snap.alpha[d] == 0.0
        assert snap.mindex[d] == pytest.approx(snap.beta[d] * snap.l_s[d])

    def test_idle_directory_scores_zero(self):
        stats, d = stats_for(10)
        stats.end_epoch()
        snap = analyze(stats)
        assert snap.alpha[d] == 0.0
        assert snap.l_t[d] == 0.0
        assert snap.mindex[d] == 0.0


class TestMindexEquation:
    """PatternSnapshot.mindex is exactly Eq. 4 at the alpha/beta extremes."""

    def make(self, alpha, beta, l_t=(10.0, 20.0), l_s=(3.0, 7.0)):
        n = len(l_t)
        return PatternSnapshot(alpha=np.full(n, float(alpha)),
                               beta=np.full(n, float(beta)),
                               l_t=np.asarray(l_t), l_s=np.asarray(l_s))

    def test_both_zero_kills_the_index(self):
        assert self.make(0, 0).mindex.tolist() == [0.0, 0.0]

    def test_both_one_sums_the_loads(self):
        assert self.make(1, 1).mindex.tolist() == [13.0, 27.0]

    def test_pure_temporal(self):
        assert self.make(1, 0).mindex.tolist() == [10.0, 20.0]

    def test_pure_spatial(self):
        assert self.make(0, 1).mindex.tolist() == [3.0, 7.0]
