"""Simulator engine: conservation, capacity, epochs, dynamics, data path."""

import pytest

from repro.balancers import make_balancer
from repro.cluster.simulator import SimConfig, Simulator
from repro.workloads import MdtestWorkload, ZipfWorkload
from repro.workloads.base import Client, OP_STAT


class TestBasicRun:
    def test_all_clients_finish(self, make_sim):
        res = make_sim("nop").run()
        assert len(res.completion_ticks) == 6

    def test_ops_conserved(self, make_sim):
        # Every op issued by every client is served exactly once.
        sim = make_sim("nop")
        res = sim.run()
        issued = sum(c.ops_done for c in sim.clients)
        assert sum(res.served_per_mds) == issued == res.meta_ops

    def test_single_mds_bottleneck(self, make_sim):
        # Without balancing everything stays on MDS-0.
        res = make_sim("nop").run()
        assert res.served_per_mds[1] == 0 and res.served_per_mds[2] == 0

    def test_capacity_respected_per_epoch(self, make_sim):
        res = make_sim("nop").run()
        for row in res.per_mds_iops:
            for v in row:
                assert v <= 50.0 + 1e-9  # configured capacity

    def test_deterministic(self, make_sim):
        r1 = make_sim("lunule").run()
        r2 = make_sim("lunule").run()
        assert r1.completion_ticks == r2.completion_ticks
        assert r1.if_series == r2.if_series

    def test_epoch_series_aligned(self, make_sim):
        res = make_sim("nop").run()
        n = len(res.epoch_ticks)
        assert len(res.per_mds_iops) == n
        assert len(res.if_series) == n
        assert len(res.migrated_series) == n
        assert len(res.forwards_series) == n

    def test_max_ticks_bounds_run(self, make_sim):
        res = make_sim("nop", max_ticks=20).run()
        assert res.finished_tick <= 20

    def test_needs_an_mds(self, make_sim):
        with pytest.raises(ValueError):
            make_sim("nop", n_mds=0)


class TestBalancedRun:
    def test_lunule_spreads_load(self, make_sim):
        res = make_sim("lunule").run()
        busy = sum(1 for s in res.served_per_mds if s > 0)
        assert busy >= 2

    def test_lunule_faster_than_nop(self, make_sim):
        slow = make_sim("nop").run()
        fast = make_sim("lunule").run()
        assert fast.finished_tick < slow.finished_tick

    def test_migration_moves_inodes(self, make_sim):
        res = make_sim("lunule").run()
        assert res.migrated_series[-1] > 0
        assert res.committed_tasks > 0

    def test_inode_distribution_total_preserved(self, make_sim):
        sim = make_sim("lunule", workload=ZipfWorkload(6, files_per_dir=50,
                                                       reads_per_client=300))
        total_before = sum(sim.authmap.inode_distribution(sim.n_mds))
        res = sim.run()
        assert sum(res.inode_distribution) == total_before


class TestRateLimiting:
    def test_rate_caps_throughput(self):
        wl = ZipfWorkload(4, files_per_dir=20, reads_per_client=200, client_rate=2)
        sim = Simulator(wl.materialize(seed=1), make_balancer("nop"),
                        SimConfig(n_mds=2, mds_capacity=100, epoch_len=5,
                                  max_ticks=5000))
        res = sim.run()
        # 4 clients x 2 ops/tick max = 8 IOPS ceiling
        for row in res.per_mds_iops:
            assert sum(row) <= 8.0 + 1e-9

    def test_unlimited_clients_run_faster(self):
        def run(rate):
            wl = ZipfWorkload(4, files_per_dir=20, reads_per_client=200,
                              client_rate=rate)
            sim = Simulator(wl.materialize(seed=1), make_balancer("nop"),
                            SimConfig(n_mds=2, mds_capacity=100, epoch_len=5,
                                      max_ticks=5000))
            return sim.run().finished_tick
        assert run(None) < run(2)


class TestDynamics:
    def test_add_mds_mid_run(self, make_sim):
        sim = make_sim("lunule", schedule=[(20, lambda s: s.add_mds(1))],
                       workload=ZipfWorkload(6, files_per_dir=50, reads_per_client=800))
        assert sim.n_mds == 3
        res = sim.run()
        assert len(res.served_per_mds) == 4
        assert len(res.per_mds_iops[-1]) == 4

    def test_add_clients_mid_run(self, make_sim):
        wl = ZipfWorkload(8, files_per_dir=50, reads_per_client=300)
        inst = wl.materialize(seed=3)
        late = inst.clients[4:]
        inst.clients = inst.clients[:4]
        sim = Simulator(inst, make_balancer("lunule"),
                        SimConfig(n_mds=3, mds_capacity=50, epoch_len=5,
                                  max_ticks=5000),
                        schedule=[(30, lambda s: s.add_clients(late))])
        res = sim.run()
        assert len(res.completion_ticks) == 8
        assert min(t for cid, t in res.completion_ticks.items() if cid >= 4) > 30

    def test_duplicate_client_rejected(self, make_sim):
        wl = ZipfWorkload(2, files_per_dir=10, reads_per_client=10)
        inst = wl.materialize(seed=1)
        sim = Simulator(inst, make_balancer("nop"),
                        SimConfig(n_mds=2, mds_capacity=50, max_ticks=100))
        with pytest.raises(ValueError):
            sim.add_clients([inst.clients[0]])


class TestDataPath:
    def _run(self, balancer="nop"):
        wl = ZipfWorkload(4, files_per_dir=30, reads_per_client=150,
                          file_bytes=1_000_000)
        cfg = SimConfig(n_mds=2, mds_capacity=100, epoch_len=5, max_ticks=10_000,
                        data_path=True, n_osds=1, osd_bandwidth=2_000_000,
                        data_window=500_000)
        sim = Simulator(wl.materialize(seed=2), make_balancer(balancer), cfg)
        return sim, sim.run()

    def test_data_ops_counted(self):
        _, res = self._run()
        assert res.data_ops == 4 * 150
        assert res.meta_ratio() == pytest.approx(0.5)

    def test_data_path_slows_completion(self):
        _, with_data = self._run()
        wl = ZipfWorkload(4, files_per_dir=30, reads_per_client=150,
                          file_bytes=1_000_000)
        cfg = SimConfig(n_mds=2, mds_capacity=100, epoch_len=5, max_ticks=10_000)
        no_data = Simulator(wl.materialize(seed=2), make_balancer("nop"), cfg).run()
        assert with_data.finished_tick > no_data.finished_tick

    def test_all_bytes_drained_at_completion(self):
        sim, res = self._run()
        total = 4 * 150 * 1_000_000
        assert sim.osd.bytes_served == pytest.approx(total)
        assert sim.osd.inflight_count() == 0


class TestCreates:
    def test_mdtest_grows_namespace(self):
        wl = MdtestWorkload(4, creates_per_client=100)
        inst = wl.materialize(seed=1)
        sim = Simulator(inst, make_balancer("nop"),
                        SimConfig(n_mds=2, mds_capacity=100, epoch_len=5,
                                  max_ticks=2000))
        res = sim.run()
        assert inst.tree.total_files() == 400
        assert res.meta_ops == 400


class TestStallJitter:
    def test_stalled_client_waits(self):
        ops = iter([(OP_STAT, 0, -1, 0)] * 50)
        c = Client(0, ops, stall_prob=0.99, seed=1)
        c.advance(now=7)
        assert c.ready_at == 8
