"""Chaos schedule DSL: event validation, expansion, loaders, determinism.

Pins the contract of ``repro.chaos.schedule``: malformed events raise
typed errors (all ``ScheduleError`` subclasses, themselves ValueErrors),
expansion is a pure function of ``(schedule, n_mds, seed)``, and the
TOML-subset fallback parser agrees with ``tomllib`` on every bundled
scenario file.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos.schedule import (
    ChaosError,
    ChaosSchedule,
    CorrelatedFailure,
    EpochRangeError,
    FailMds,
    FaultWindow,
    FlapMds,
    OverlapError,
    RandomFailures,
    ScheduleError,
    SlowMds,
    UnknownRankError,
    _parse_toml_subset,
    bundled_scenarios,
    load_schedule,
    loads_toml,
    schedule_from_dict,
)


class TestEventValidation:
    def test_negative_epoch_rejected(self):
        with pytest.raises(EpochRangeError):
            FailMds(rank=0, at_epoch=-1)

    def test_zero_duration_rejected(self):
        with pytest.raises(EpochRangeError):
            FailMds(rank=0, at_epoch=3, duration=0)

    @pytest.mark.parametrize("factor", [0.0, 1.0, -0.5, 2.0])
    def test_slow_factor_must_be_fractional(self, factor):
        with pytest.raises(ScheduleError):
            SlowMds(rank=1, at_epoch=2, factor=factor)

    @pytest.mark.parametrize("kwargs", [
        {"cycles": 0}, {"down": 0}, {"up": 0}, {"at_epoch": -3},
    ])
    def test_flap_timing_rejected(self, kwargs):
        base = {"rank": 0, "at_epoch": 2, "cycles": 2, "down": 1, "up": 1}
        with pytest.raises(EpochRangeError):
            FlapMds(**{**base, **kwargs})

    def test_correlated_needs_ranks(self):
        with pytest.raises(ScheduleError):
            CorrelatedFailure(ranks=(), at_epoch=2)

    def test_correlated_rejects_duplicates(self):
        with pytest.raises(ScheduleError):
            CorrelatedFailure(ranks=(1, 2, 1), at_epoch=2)

    def test_random_inverted_range_rejected(self):
        with pytest.raises(EpochRangeError):
            RandomFailures(count=1, start_epoch=5, end_epoch=5)

    def test_random_zero_count_rejected(self):
        with pytest.raises(EpochRangeError):
            RandomFailures(count=0, start_epoch=0, end_epoch=10)

    def test_typed_errors_are_value_errors(self):
        # callers can catch ValueError without importing the chaos layer
        for exc in (ScheduleError, UnknownRankError, OverlapError,
                    EpochRangeError):
            assert issubclass(exc, ValueError)
            assert issubclass(exc, ChaosError)


class TestFaultWindow:
    def test_overlap_is_symmetric(self):
        a = FaultWindow(2, 5, 0, "fail")
        b = FaultWindow(4, 6, 0, "fail")
        assert a.overlaps(b) and b.overlaps(a)

    def test_different_ranks_never_overlap(self):
        a = FaultWindow(2, 5, 0, "fail")
        b = FaultWindow(2, 5, 1, "fail")
        assert not a.overlaps(b)

    def test_touching_intervals_do_not_overlap(self):
        # [2, 4) then [4, 6): recover and re-fail in adjacent epochs
        a = FaultWindow(2, 4, 0, "fail")
        b = FaultWindow(4, 6, 0, "fail")
        assert not a.overlaps(b)


def expand(events, n_mds=3, seed=0, name="t"):
    return ChaosSchedule(name=name, events=tuple(events)).expand(n_mds, seed)


class TestExpand:
    def test_fail_window_interval(self):
        (w,) = expand([FailMds(rank=1, at_epoch=4, duration=3)])
        assert (w.start_epoch, w.end_epoch, w.rank, w.kind) == (4, 7, 1, "fail")

    def test_slow_window_carries_factor(self):
        (w,) = expand([SlowMds(rank=2, at_epoch=1, duration=2, factor=0.25)])
        assert w.kind == "slow" and w.factor == 0.25

    def test_flap_expands_to_spaced_cycles(self):
        ws = expand([FlapMds(rank=0, at_epoch=2, cycles=3, down=1, up=2)])
        assert [(w.start_epoch, w.end_epoch) for w in ws] == [
            (2, 3), (5, 6), (8, 9)]
        assert all(w.kind == "fail" and w.rank == 0 for w in ws)

    def test_correlated_expands_per_rank(self):
        ws = expand([CorrelatedFailure(ranks=(0, 2), at_epoch=5, duration=2)])
        assert [(w.rank, w.start_epoch, w.end_epoch) for w in ws] == [
            (0, 5, 7), (2, 5, 7)]

    def test_unknown_rank_rejected(self):
        with pytest.raises(UnknownRankError):
            expand([FailMds(rank=5, at_epoch=2)], n_mds=3)

    def test_overlapping_windows_rejected(self):
        with pytest.raises(OverlapError):
            expand([FailMds(rank=1, at_epoch=2, duration=3),
                    SlowMds(rank=1, at_epoch=4, duration=2)])

    def test_adjacent_windows_allowed(self):
        ws = expand([FailMds(rank=1, at_epoch=2, duration=2),
                     SlowMds(rank=1, at_epoch=4, duration=2)])
        assert len(ws) == 2

    def test_windows_sorted_by_start(self):
        ws = expand([FailMds(rank=2, at_epoch=9), FailMds(rank=0, at_epoch=1)])
        assert ws == sorted(ws)

    def test_bad_cluster_size_rejected(self):
        with pytest.raises(ScheduleError):
            expand([FailMds(rank=0, at_epoch=1)], n_mds=0)

    def test_empty_name_rejected(self):
        with pytest.raises(ScheduleError):
            ChaosSchedule(name="", events=(FailMds(rank=0, at_epoch=1),))


class TestRandomFailures:
    def schedule(self, **kwargs):
        defaults = dict(count=3, start_epoch=0, end_epoch=30, duration=1)
        return ChaosSchedule(name="storm-t",
                             events=(RandomFailures(**{**defaults, **kwargs}),))

    def test_same_seed_same_windows(self):
        s = self.schedule()
        assert s.expand(3, seed=7) == s.expand(3, seed=7)

    def test_seed_override_beats_schedule_seed(self):
        s = ChaosSchedule(name="storm-t", seed=1,
                          events=(RandomFailures(3, 0, 30),))
        assert s.expand(3, seed=None) == s.expand(3, seed=1)

    def test_ranks_pool_respected(self):
        ws = self.schedule(ranks=(1,)).expand(3, seed=0)
        assert all(w.rank == 1 for w in ws)

    def test_crowded_range_fails_loudly(self):
        # 5 one-epoch failures on a single rank over 2 epochs cannot fit
        with pytest.raises(OverlapError):
            self.schedule(count=5, end_epoch=2, ranks=(0,)).expand(3, seed=0)

    @given(count=st.integers(1, 4), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_expansion_is_pure_and_in_range(self, count, seed):
        s = self.schedule(count=count)
        ws = s.expand(3, seed=seed)
        assert ws == s.expand(3, seed=seed)
        assert len(ws) == count
        for w in ws:
            assert 0 <= w.start_epoch < 30
            assert 0 <= w.rank < 3
        for a in ws:
            assert sum(a.overlaps(b) for b in ws) == 1  # only itself


@st.composite
def disjoint_events(draw):
    """Valid schedules: per-rank windows separated by at least one epoch."""
    events = []
    for rank in range(3):
        epoch = draw(st.integers(0, 3))
        for _ in range(draw(st.integers(0, 2))):
            dur = draw(st.integers(1, 3))
            if draw(st.booleans()):
                events.append(FailMds(rank=rank, at_epoch=epoch, duration=dur))
            else:
                factor = draw(st.floats(0.1, 0.9, allow_nan=False))
                events.append(SlowMds(rank=rank, at_epoch=epoch,
                                      duration=dur, factor=factor))
            epoch += dur + draw(st.integers(1, 3))
    if not events:
        events.append(FailMds(rank=0, at_epoch=draw(st.integers(0, 5))))
    return tuple(events)


class TestExpandProperties:
    @given(events=disjoint_events(), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_expand_deterministic_and_overlap_free(self, events, seed):
        s = ChaosSchedule(name="prop", events=events)
        ws = s.expand(3, seed=seed)
        assert ws == s.expand(3, seed=seed)
        assert ws == sorted(ws)
        assert len(ws) == len(events)
        for i, a in enumerate(ws):
            for b in ws[i + 1:]:
                assert not a.overlaps(b)


class TestFromDict:
    def good(self):
        return {"name": "x", "events": [
            {"kind": "fail_mds", "rank": 0, "at_epoch": 2}]}

    def test_round_trip(self):
        s = schedule_from_dict(self.good())
        assert s.name == "x" and s.events == (FailMds(rank=0, at_epoch=2),)

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ScheduleError, match="unknown schedule keys"):
            schedule_from_dict({**self.good(), "epoch_len": 5})

    def test_empty_events_rejected(self):
        with pytest.raises(ScheduleError, match="non-empty"):
            schedule_from_dict({"name": "x", "events": []})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScheduleError, match="unknown event kind"):
            schedule_from_dict({"name": "x", "events": [
                {"kind": "nuke_mds", "rank": 0, "at_epoch": 1}]})

    def test_bad_event_field_rejected(self):
        with pytest.raises(ScheduleError, match="fail_mds"):
            schedule_from_dict({"name": "x", "events": [
                {"kind": "fail_mds", "rank": 0, "at_epoch": 1, "blast": 9}]})

    def test_non_table_event_rejected(self):
        with pytest.raises(ScheduleError, match="must be a table"):
            schedule_from_dict({"name": "x", "events": ["fail_mds"]})

    def test_ranks_list_becomes_tuple(self):
        s = schedule_from_dict({"name": "x", "events": [
            {"kind": "correlated_failure", "ranks": [1, 2], "at_epoch": 3}]})
        assert s.events[0].ranks == (1, 2)


class TestTomlSubset:
    def test_fallback_agrees_with_tomllib_on_bundled(self):
        tomllib = pytest.importorskip("tomllib")
        for path in bundled_scenarios().values():
            text = path.read_text(encoding="utf-8")
            assert _parse_toml_subset(text) == tomllib.loads(text)

    def test_value_types(self):
        doc = _parse_toml_subset(
            'name = "brown"  # comment\n'
            "seed = 4\n"
            "scale = 0.25\n"
            "armed = true\n"
            "[[events]]\n"
            "ranks = [1, 2]\n")
        assert doc == {"name": "brown", "seed": 4, "scale": 0.25,
                       "armed": True, "events": [{"ranks": [1, 2]}]}

    def test_plain_table_rejected(self):
        with pytest.raises(ScheduleError, match="not supported"):
            _parse_toml_subset("[cluster]\nn_mds = 3\n")

    def test_missing_equals_rejected(self):
        with pytest.raises(ScheduleError, match="key = value"):
            _parse_toml_subset("name\n")

    def test_garbage_value_rejected(self):
        with pytest.raises(ScheduleError, match="cannot parse"):
            _parse_toml_subset("seed = {oops}\n")

    def test_loads_toml_parses_minimal_schedule(self):
        doc = loads_toml('name = "t"\n[[events]]\nkind = "fail_mds"\n'
                         "rank = 0\nat_epoch = 2\n")
        s = schedule_from_dict(doc)
        assert s.events == (FailMds(rank=0, at_epoch=2),)


class TestLoadSchedule:
    def test_json_schedule(self, tmp_path):
        p = tmp_path / "s.json"
        p.write_text(json.dumps({"name": "j", "events": [
            {"kind": "slow_mds", "rank": 1, "at_epoch": 2, "factor": 0.5}]}))
        s = load_schedule(p)
        assert s.events == (SlowMds(rank=1, at_epoch=2, factor=0.5),)

    def test_invalid_json_is_schedule_error(self, tmp_path):
        p = tmp_path / "s.json"
        p.write_text("{nope")
        with pytest.raises(ScheduleError, match="invalid JSON"):
            load_schedule(p)

    def test_unknown_suffix_rejected(self, tmp_path):
        p = tmp_path / "s.yaml"
        p.write_text("name: x\n")
        with pytest.raises(ScheduleError, match="unknown schedule format"):
            load_schedule(p)

    def test_missing_name_defaults_to_stem(self, tmp_path):
        p = tmp_path / "meltdown.toml"
        p.write_text('[[events]]\nkind = "fail_mds"\nrank = 0\nat_epoch = 1\n')
        assert load_schedule(p).name == "meltdown"

    @pytest.mark.parametrize("name", sorted(bundled_scenarios()))
    def test_bundled_scenarios_load_and_expand(self, name):
        s = load_schedule(bundled_scenarios()[name])
        assert s.name == name
        assert s.description
        ws = s.expand(3, seed=1)
        assert ws, f"bundled scenario {name} expands to no fault windows"
