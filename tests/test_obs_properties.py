"""Property tests for the observability layer itself.

The registry and the trace are the instruments every other claim in this
repository is measured with, so they get the strongest guarantees:
counters are monotone, histogram bucket counts are monotone left-to-right
and conserve observations, and every trace event survives a JSONL
round-trip bit-for-bit.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.namespace.dirfrag import FragId
from repro.obs.events import (
    EpochStart,
    IfComputed,
    MdsFailed,
    MdsRecovered,
    MigrationAborted,
    MigrationCommitted,
    MigrationPlanned,
    RoleAssigned,
    SubtreeSelected,
    decode_unit,
    encode_unit,
    event_from_json,
    event_to_json,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracelog import TraceLog

finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
amounts = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
ranks = st.integers(min_value=0, max_value=63)
ticks = st.integers(min_value=0, max_value=10**9)

# frag_no must fit the split width: 0 <= frag_no < 2**bits
frag_ids = st.integers(min_value=1, max_value=7).flatmap(
    lambda bits: st.builds(
        FragId,
        st.integers(min_value=0, max_value=10**6),
        st.just(bits),
        st.integers(min_value=0, max_value=(1 << bits) - 1)))

units = st.one_of(
    st.integers(min_value=0, max_value=10**6),
    frag_ids.map(encode_unit),
)
reasons = st.sampled_from(["stale_auth", "overlap", "mds_failed"])

events = st.one_of(
    st.builds(EpochStart, epoch=ticks, tick=ticks),
    st.builds(IfComputed, epoch=ticks, value=finite,
              loads=st.tuples(*[finite] * 3), source=st.sampled_from(
                  ["simulator", "initiator"])),
    st.builds(RoleAssigned, epoch=ticks, rank=ranks,
              role=st.sampled_from(["exporter", "importer"]), amount=finite),
    st.builds(SubtreeSelected, epoch=ticks, exporter=ranks, importer=ranks,
              unit=units, load=finite),
    st.builds(MigrationPlanned, tick=ticks, src=ranks, dst=ranks, unit=units,
              inodes=st.integers(min_value=0, max_value=10**9), load=finite),
    st.builds(MigrationCommitted, tick=ticks, src=ranks, dst=ranks, unit=units,
              inodes=st.integers(min_value=0, max_value=10**9)),
    st.builds(MigrationAborted, tick=ticks, src=ranks, dst=ranks, unit=units,
              reason=reasons),
    st.builds(MdsFailed, tick=ticks, rank=ranks),
    st.builds(MdsRecovered, tick=ticks, rank=ranks),
)


class TestCounterMonotonicity:
    @given(st.lists(amounts, max_size=50))
    def test_counter_never_decreases(self, increments):
        reg = MetricsRegistry()
        c = reg.counter("ops")
        last = c.value
        for amount in increments:
            c.inc(amount)
            assert c.value >= last
            last = c.value
        assert c.value == pytest.approx(sum(increments))


class TestHistogramProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    max_size=200))
    def test_cumulative_buckets_monotone(self, values):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(0.0, 1.0, 10.0, 100.0))
        for v in values:
            h.observe(v)
        cum = h.cumulative_counts()
        assert all(a <= b for a, b in zip(cum, cum[1:]))
        assert cum[-1] == h.count == len(values)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=100))
    def test_every_observation_lands_in_exactly_one_bucket(self, values):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(-10.0, 0.0, 10.0))
        for v in values:
            h.observe(v)
        # per-bucket (non-cumulative) counts conserve the observation count
        cum = h.cumulative_counts()
        per_bucket = [cum[0]] + [b - a for a, b in zip(cum, cum[1:])]
        assert sum(per_bucket) == len(values)
        assert all(c >= 0 for c in per_bucket)


class TestEventRoundTrip:
    @given(events)
    @settings(max_examples=300)
    def test_jsonl_round_trip_is_identity(self, event):
        line = event_to_json(event)
        assert "\n" not in line
        restored = event_from_json(line)
        assert restored == event
        assert type(restored) is type(event)
        # canonical form is a fixed point
        assert event_to_json(restored) == line

    @given(st.lists(events, max_size=40))
    def test_tracelog_dumps_parse_back(self, evs):
        log = TraceLog()
        for e in evs:
            log.emit(e)
        restored = [event_from_json(line)
                    for line in log.dumps().splitlines() if line]
        assert restored == evs

    @given(st.lists(events, min_size=1, max_size=40),
           st.integers(min_value=1, max_value=10))
    def test_ring_buffer_keeps_most_recent(self, evs, capacity):
        log = TraceLog(capacity=capacity)
        for e in evs:
            log.emit(e)
        assert len(log) == min(capacity, len(evs))
        assert log.events() == evs[-capacity:]
        assert log.emitted == len(evs)
        assert log.dropped == len(evs) - len(log)


class TestUnitEncoding:
    @given(st.integers(min_value=0, max_value=10**9))
    def test_dir_units_pass_through(self, dir_id):
        assert decode_unit(encode_unit(dir_id)) == dir_id

    @given(frag_ids)
    def test_frag_units_round_trip(self, frag):
        encoded = encode_unit(frag)
        assert isinstance(encoded, str)
        assert decode_unit(encoded) == frag
