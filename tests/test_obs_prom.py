"""OpenMetrics exposition + the self-check parser that CI runs against it."""

from __future__ import annotations

import math

import pytest

from repro.obs.prom import (
    parse_openmetrics,
    render_openmetrics,
    sanitize_metric_name,
    write_textfile,
)
from repro.obs.registry import MetricsRegistry


@pytest.fixture
def reg() -> MetricsRegistry:
    r = MetricsRegistry()
    r.counter("sim.ops", mds=0).inc(3)
    r.counter("sim.ops", mds=1).inc(4)
    r.gauge("sim.if").set(0.25)
    h = r.histogram("op.latency", buckets=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0):
        h.observe(v)
    return r


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("sim.epochs") == "sim_epochs"

    def test_leading_digit_guarded(self):
        assert sanitize_metric_name("9lives") == "_9lives"


class TestRender:
    def test_counters_gain_total_suffix(self, reg):
        text = render_openmetrics(reg)
        assert "# TYPE sim_ops counter" in text
        assert 'sim_ops_total{mds="0"} 3.0' in text
        assert 'sim_ops_total{mds="1"} 4.0' in text

    def test_histogram_exposes_cumulative_buckets(self, reg):
        text = render_openmetrics(reg)
        assert 'op_latency_bucket{le="1.0"} 1.0' in text
        assert 'op_latency_bucket{le="10.0"} 2.0' in text
        assert 'op_latency_bucket{le="+Inf"} 3.0' in text
        assert "op_latency_count 3.0" in text
        assert "op_latency_sum 55.5" in text

    def test_ends_with_eof(self, reg):
        assert render_openmetrics(reg).endswith("# EOF\n")

    def test_snapshot_dict_renders_identically(self, reg):
        assert render_openmetrics(reg.snapshot()) == render_openmetrics(reg)

    def test_textfile_write_is_atomic_rename(self, reg, tmp_path):
        path = tmp_path / "run.prom"
        text = write_textfile(reg, path)
        assert path.read_text(encoding="utf-8") == text
        assert not (tmp_path / "run.prom.tmp").exists()


class TestSelfCheckParser:
    def test_round_trip(self, reg):
        families = parse_openmetrics(render_openmetrics(reg))
        assert families["sim_ops"]["type"] == "counter"
        assert [(n, lab["mds"], v)
                for n, lab, v in families["sim_ops"]["samples"]] == \
            [("sim_ops_total", "0", 3.0), ("sim_ops_total", "1", 4.0)]
        bucket_values = [v for n, lab, v in families["op_latency"]["samples"]
                        if n == "op_latency_bucket"]
        assert bucket_values == [1.0, 2.0, 3.0]

    def test_missing_eof_rejected(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE a gauge\na 1.0\n")

    def test_sample_before_type_rejected(self):
        with pytest.raises(ValueError, match="TYPE"):
            parse_openmetrics("a_total 1.0\n# TYPE a counter\n# EOF\n")

    def test_counter_sample_without_total_rejected(self):
        with pytest.raises(ValueError, match="no preceding"):
            parse_openmetrics("# TYPE a counter\na 1.0\n# EOF\n")

    def test_non_cumulative_buckets_rejected(self):
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="1.0"} 5.0\n'
               'h_bucket{le="+Inf"} 3.0\n'
               "h_count 3.0\nh_sum 1.0\n# EOF\n")
        with pytest.raises(ValueError, match="cumulative"):
            parse_openmetrics(bad)

    def test_missing_inf_bucket_rejected(self):
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="1.0"} 1.0\n'
               "h_count 1.0\nh_sum 0.5\n# EOF\n")
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_openmetrics(bad)

    def test_inf_bucket_count_mismatch_rejected(self):
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="+Inf"} 2.0\n'
               "h_count 3.0\nh_sum 1.0\n# EOF\n")
        with pytest.raises(ValueError, match="_count"):
            parse_openmetrics(bad)

    def test_special_values_parse(self):
        text = ("# TYPE g gauge\ng{k=\"v\"} +Inf\ng{k=\"w\"} NaN\n# EOF\n")
        samples = parse_openmetrics(text)["g"]["samples"]
        assert samples[0][2] == math.inf
        assert math.isnan(samples[1][2])
