"""Property tests: the simulator stays consistent under arbitrary schedules.

Random combinations of mid-run events (MDS additions, failures/recoveries,
client waves) must never violate the core invariants: op conservation,
inode-total conservation, valid authority resolution, aligned series.
"""

from hypothesis import given, settings, strategies as st

from repro.balancers import make_balancer
from repro.cluster.simulator import SimConfig, Simulator
from repro.workloads import ZipfWorkload


def build_sim(n_clients, events, balancer="lunule"):
    wl = ZipfWorkload(max(2, n_clients), files_per_dir=25, reads_per_client=120)
    inst = wl.materialize(seed=2)
    schedule = []
    for kind, tick, arg in events:
        if kind == "add_mds":
            schedule.append((tick, lambda s: s.add_mds(1)))
        elif kind == "fail":
            # resolve the concrete rank at fail time and recover that same
            # rank later (the cluster may have grown in between)
            def make_pair(raw_rank):
                holder = {}

                def do_fail(s):
                    holder["rank"] = raw_rank % s.n_mds
                    s.fail_mds(holder["rank"])

                def do_recover(s):
                    if "rank" in holder:
                        s.recover_mds(holder["rank"])

                return do_fail, do_recover

            fail_fn, recover_fn = make_pair(arg)
            schedule.append((tick, fail_fn))
            schedule.append((tick + 20, recover_fn))
    cfg = SimConfig(n_mds=3, mds_capacity=40, epoch_len=5, max_ticks=4000)
    return Simulator(inst, make_balancer(balancer), cfg, schedule=schedule)


event_strategy = st.lists(
    st.tuples(st.sampled_from(["add_mds", "fail"]),
              st.integers(5, 120),
              st.integers(0, 5)),
    max_size=4,
)


class TestRandomSchedules:
    @given(st.integers(2, 6), event_strategy)
    @settings(max_examples=20, deadline=None)
    def test_invariants_hold(self, n_clients, events):
        sim = build_sim(n_clients, events)
        expected_inodes = sum(sim.authmap.inode_distribution(sim.n_mds))
        res = sim.run()

        # ops conserved and all clients completed
        issued = max(2, n_clients) * 120
        assert sum(res.served_per_mds) == issued
        assert len(res.completion_ticks) == max(2, n_clients)

        # inode totals conserved through every migration/expansion
        assert sum(res.inode_distribution) == expected_inodes

        # every directory still resolves to a live rank
        for d in range(sim.tree.n_dirs):
            auth, _root = sim.authmap.resolve_dir(d)
            assert 0 <= auth < sim.n_mds

        # per-epoch series stay aligned
        n = len(res.epoch_ticks)
        assert (len(res.per_mds_iops) == len(res.if_series)
                == len(res.migrated_series) == len(res.latency_series) == n)

    @given(event_strategy)
    @settings(max_examples=10, deadline=None)
    def test_determinism_with_schedules(self, events):
        a = build_sim(4, events).run()
        b = build_sim(4, events).run()
        assert a.completion_ticks == b.completion_ticks
        assert a.if_series == b.if_series
        assert a.migrated_series == b.migrated_series
