"""Smoke tests for every paper-figure function at reduced scale.

These don't re-assert the shapes (the benchmarks do, at full bench scale);
they verify each figure function runs end to end, returns populated data,
and renders non-empty text.
"""

import pytest

from repro.experiments import figures as F

SCALE = 0.25
SEED = 3


@pytest.fixture(scope="module")
def matrix():
    return F.eval_matrix(scale=SCALE, seed=SEED,
                         workloads=("cnn", "zipf"),
                         balancers=("vanilla", "lunule"))


@pytest.fixture(scope="module")
def mixed_runs():
    return F.mixed_comparison(scale=SCALE, seed=SEED, n_clients=8)


class TestStandalone:
    def test_table1(self):
        r = F.table1_workloads(scale=SCALE, seed=SEED)
        assert len(r.data["rows"]) == 5
        assert "Table 1" in r.text

    def test_fig2(self):
        r = F.fig2_request_distribution(scale=SCALE, seed=SEED)
        assert set(r.data["shares"]) == set(F.SINGLE_WORKLOADS)

    def test_fig3(self):
        r = F.fig3_per_mds_throughput(scale=SCALE, seed=SEED)
        assert r.data["zipf"]["per_mds"].shape[1] == 5

    def test_fig4(self):
        r = F.fig4_migrated_inodes(scale=SCALE, seed=SEED)
        assert r.data["cnn"]["migrated"][-1] >= 0


class TestMatrixFigures:
    def test_fig6_with_partial_matrix(self, matrix):
        r = F.fig6_imbalance_factor(matrix=matrix)
        assert {row[0] for row in r.data["rows"]} == {"cnn", "zipf"}
        assert "Figure 6" in r.text

    def test_fig7_with_partial_matrix(self, matrix):
        r = F.fig7_throughput(matrix=matrix)
        assert all(len(row) >= 4 for row in r.data["rows"])


class TestMixedFigures:
    def test_fig9(self, mixed_runs):
        r = F.fig9_mixed_if(runs=mixed_runs)
        assert set(r.data) == {"vanilla", "lunule"}

    def test_fig10(self, mixed_runs):
        r = F.fig10_mixed_throughput(runs=mixed_runs)
        assert "agg" in r.data["lunule"]

    def test_fig11(self, mixed_runs):
        r = F.fig11_jct_cdf(runs=mixed_runs)
        assert 50 in r.data["lunule"]["percentiles"]


class TestDynamicsFigures:
    def test_fig12a(self):
        r = F.fig12a_cluster_expansion(scale=SCALE, seed=SEED)
        assert len(r.data["phases"]) == 3

    def test_fig12b(self):
        r = F.fig12b_client_growth(scale=SCALE, seed=SEED)
        assert len(r.data["rows"]) >= 3

    def test_fig13a_small_sizes(self):
        r = F.fig13a_scalability(scale=SCALE, seed=SEED, cluster_sizes=(1, 2, 4))
        assert set(r.data["peaks"]) == {1, 2, 4}


class TestDirhashFigures:
    @pytest.fixture(scope="class")
    def web_runs(self):
        from repro.experiments.config import BENCH_SIM_CONFIG, ExperimentConfig
        from repro.experiments.runner import run_experiment

        return {
            b: run_experiment(ExperimentConfig(
                workload="web", balancer=b, n_clients=6, seed=SEED,
                scale=SCALE, sim=BENCH_SIM_CONFIG))
            for b in ("vanilla", "dirhash", "lunule")
        }

    def test_fig13b(self, web_runs):
        r = F.fig13b_dirhash_throughput(results=web_runs)
        assert len(r.data["rows"]) == 3

    def test_fig14(self, web_runs):
        r = F.fig14_dirhash_distribution(results=web_runs)
        assert len(r.data["inode_share"]) == 5
        assert set(r.data["forwards"]) == {"vanilla", "dirhash", "lunule"}


class TestOverhead:
    def test_measure_overhead(self):
        from repro.experiments.overhead import measure_overhead

        rep = measure_overhead(3, n_clients=6, seed=SEED)
        assert rep.n_mds == 3 and rep.epochs > 0
        assert rep.initiator_in_per_epoch > 0
        assert rep.heartbeat_gossip_per_epoch > rep.initiator_in_per_epoch
        assert "Overhead accounting" in rep.table()
