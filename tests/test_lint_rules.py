"""Rule-level tests over the fixture corpus in ``tests/lint_fixtures/``.

Every rule has at least one positive fixture (the rule fires, at known
lines) and one negative twin (the rule stays quiet on the idiomatic
version of the same code). A final test pins the acceptance criterion:
the repo's own ``src/repro`` tree lints clean under the full rule set.
"""

import pathlib

import pytest

from repro.lint import lint_paths

FIXTURES = pathlib.Path(__file__).resolve().parent / "lint_fixtures"
REPO = pathlib.Path(__file__).resolve().parents[1]


def _lint(case: str, rule: str):
    return lint_paths([FIXTURES / case], rules=[rule], root=FIXTURES / case)


def _lines(result, rule: str, filename: str) -> list[int]:
    return sorted(f.line for f in result.findings
                  if f.rule == rule and f.path.endswith(filename))


POSITIVE = [
    ("determinism", "wall-clock", "bad_wallclock.py", [7, 11]),
    ("determinism", "global-rng", "bad_rng.py", [9, 13, 17]),
    ("determinism", "unsorted-iter", "bad_set_iter.py", [6, 10, 15]),
    ("determinism", "str-hash", "bad_hash.py", [5]),
    ("layering", "layer-dag", "bad_import.py", [2, 3]),
    ("layering", "import-cycle", "cyc_a.py", [2]),
    ("layering", "import-cycle", "cyc_b.py", [2]),
    ("floats", "float-eq", "if_model.py", [6, 12]),
    ("purity", "policy-purity", "bad_policy.py", [18, 26, 34, 42, 50]),
    ("concurrency", "guarded-by", "bad_guarded.py", [11, 12, 16, 19, 22, 28, 32]),
    ("concurrency", "async-blocking", "bad_async.py", [13, 15, 16]),
]

NEGATIVE = [
    ("determinism", "wall-clock", "good_wallclock.py"),
    ("determinism", "global-rng", "good_rng.py"),
    ("determinism", "unsorted-iter", "good_set_iter.py"),
    ("determinism", "str-hash", "good_hash.py"),
    ("layering", "layer-dag", "good_import.py"),
    ("layering", "import-cycle", "lazy_a.py"),
    ("layering", "import-cycle", "lazy_b.py"),
    ("floats", "float-eq", "mindex.py"),
    ("purity", "policy-purity", "good_policy.py"),
    ("purity", "policy-purity", "base.py"),
    ("concurrency", "guarded-by", "good_guarded.py"),
    ("concurrency", "async-blocking", "good_async.py"),
]


@pytest.mark.parametrize("case,rule,filename,lines", POSITIVE,
                         ids=[f"{r}:{f}" for _, r, f, _ in POSITIVE])
def test_positive_fixture_fires_at_known_lines(case, rule, filename, lines):
    result = _lint(case, rule)
    assert _lines(result, rule, filename) == lines
    assert result.exit_code == 1
    for f in result.findings:
        assert f.rule in (rule, "unused-suppression")
        assert f.location.startswith(f.path)


@pytest.mark.parametrize("case,rule,filename", NEGATIVE,
                         ids=[f"{r}:{f}" for _, r, f in NEGATIVE])
def test_negative_fixture_stays_quiet(case, rule, filename):
    result = _lint(case, rule)
    assert _lines(result, rule, filename) == []


def test_layer_dag_simulator_import_names_the_design_rule():
    result = _lint("layering", "layer-dag")
    (sim_finding,) = [f for f in result.findings if "simulator" in f.message]
    assert sim_finding.line == 2
    assert "ClusterView" in sim_finding.message
    assert "EpochPlan" in sim_finding.message


def test_import_cycle_message_names_both_members():
    result = _lint("layering", "import-cycle")
    for f in result.findings:
        assert "repro.util.cyc_a" in f.message
        assert "repro.util.cyc_b" in f.message
        assert "repro.util.lazy_a" not in f.message
        assert "repro.util.lazy_b" not in f.message


def test_trace_schema_positive_closure_violations():
    result = _lint("schema_bad", "trace-schema")
    found = [(f.path, f.line, f.message) for f in result.findings]
    events = "repro/obs/events.py"
    assert any(p == events and ln == 18 and "missing from EVENT_TYPES" in m
               for p, ln, m in found)
    assert any(p == events and ln == 29 and "Missing" in m
               for p, ln, m in found)
    assert any(p == "repro/cluster/emitter.py" and ln == 8 and "Gamma" in m
               for p, ln, m in found)
    never = [m for _p, _ln, m in found if "never emitted" in m]
    assert len(never) == 2
    assert any("Beta" in m for m in never)
    assert any("Delta" in m for m in never)


def test_trace_schema_negative_is_closed():
    assert _lint("schema_good", "trace-schema").findings == []


def test_metric_name_fixture_pair():
    bad = _lint("schema_bad", "metric-name")
    assert _lines(bad, "metric-name", "metrics.py") == [5]
    assert "sim ops/served!" in bad.findings[0].message
    assert _lint("schema_good", "metric-name").findings == []


def test_policy_purity_names_the_transitive_witness():
    result = _lint("purity", "policy-purity")
    (via,) = [f for f in result.findings if "TransitivePolicy" in f.message]
    assert "via repro.balancers.bad_policy.spill" in via.message
    assert "mutates parameter 'view'" in via.message


def test_policy_purity_reports_retention_separately_from_mutation():
    result = _lint("purity", "policy-purity")
    kinds = {("retains" in f.message, "mutates" in f.message)
             for f in result.findings if "RetainingPolicy" in f.message}
    assert kinds == {(True, False)}


def test_guarded_by_rebases_lock_onto_cross_object_param():
    result = _lint("concurrency", "guarded-by")
    (xobj,) = [f for f in result.findings if f.line == 32]
    assert "hold service.lock here" in xobj.message


def test_guarded_by_holds_lock_contract_names_the_method():
    result = _lint("concurrency", "guarded-by")
    (contract,) = [f for f in result.findings if "holds-lock" in f.message]
    assert "LeakyService._advance()" in contract.message
    assert contract.line == 28


def test_async_blocking_reports_each_failure_mode_once():
    result = _lint("concurrency", "async-blocking")
    msgs = [f.message for f in result.findings]
    assert sum("blocking call" in m for m in msgs) == 1
    assert sum("await while holding" in m for m in msgs) == 1
    assert sum("unbounded lock.acquire" in m for m in msgs) == 1


def test_repo_tree_lints_clean_under_full_rule_set():
    result = lint_paths([REPO / "src"], root=REPO)
    assert result.findings == [], "\n".join(
        f"{f.location}: {f.message} [{f.rule}]" for f in result.findings)
    assert result.exit_code == 0
    assert result.checked > 70
