"""Deterministic RNG substreams."""

import numpy as np

from repro.util.rng import derive_seed, substream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_differs_by_seed(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_differs_by_name(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")

    def test_differs_by_name_depth(self):
        assert derive_seed(1, "x", "y") != derive_seed(1, "xy")

    def test_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_accepts_non_string_names(self):
        assert derive_seed(1, 5, 2.5) == derive_seed(1, "5", "2.5")

    def test_is_64_bit(self):
        s = derive_seed(123, "anything")
        assert 0 <= s < 2 ** 64


class TestSubstream:
    def test_same_stream_same_draws(self):
        a = substream(7, "w", 0).random(5)
        b = substream(7, "w", 0).random(5)
        assert np.array_equal(a, b)

    def test_different_streams_differ(self):
        a = substream(7, "w", 0).random(5)
        b = substream(7, "w", 1).random(5)
        assert not np.array_equal(a, b)

    def test_independent_of_consumer_order(self):
        # Drawing from one stream must not shift another.
        a1 = substream(7, "a")
        _ = a1.random(1000)
        b_after = substream(7, "b").random(3)
        b_fresh = substream(7, "b").random(3)
        assert np.array_equal(b_after, b_fresh)

    def test_returns_numpy_generator(self):
        assert isinstance(substream(0), np.random.Generator)
