"""The live telemetry plane: service lifecycle, event bus, HTTP, top.

The central contract under test is determinism: a :class:`SimulatorService`
driving the simulator incrementally (sync or async, throttled or not)
must reproduce the batch ``run_traced`` decision trace *byte for byte*
when no mutations are queued. Everything else — the bounded event bus,
the stdlib control plane, runtime mutation at epoch boundaries, the
``repro top`` renderer — layers on top of that guarantee.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cluster.simulator import SimConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_simulator, run_traced
from repro.obs.prom import parse_openmetrics
from repro.obs.provenance import explain, render_explain
from repro.obs.report import render_run_report
from repro.serve import (
    OPENMETRICS_CONTENT_TYPE,
    ControlPlane,
    EventBus,
    MutationError,
    SimulatorService,
    render_top,
)

#: small but complete: the trigger fires, migrations commit, several epochs
SERVE_SIM = SimConfig(n_mds=3, mds_capacity=60.0, epoch_len=5,
                      max_ticks=3000, migration_rate=50, seed=0)


def serve_cfg(**sim_overrides) -> ExperimentConfig:
    return ExperimentConfig(workload="mdtest", balancer="lunule", n_clients=8,
                            seed=7, scale=0.15,
                            sim=SERVE_SIM.with_(**sim_overrides))


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read()


def _post(url: str, doc: dict | None = None):
    body = json.dumps(doc or {}).encode()
    req = urllib.request.Request(url, data=body, method="POST",
                                 headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


# --------------------------------------------------------------- determinism
class TestServeDeterminism:
    @pytest.mark.parametrize("record", [False, True])
    def test_sync_service_trace_matches_batch(self, record):
        _, batch = run_traced(serve_cfg(record=record))
        svc = SimulatorService(serve_cfg(record=record))
        svc.run_to_completion()
        assert svc.state == "done"
        assert svc.sim.trace.dumps() == batch.trace.dumps()

    def test_async_drive_trace_matches_batch(self):
        # the actual `repro serve` path: asyncio driver, sliced ticks
        _, batch = run_traced(serve_cfg())
        svc = SimulatorService(serve_cfg(), tick_slice=17)
        svc.start()
        asyncio.run(svc.drive())
        assert svc.state == "done"
        assert svc.sim.trace.dumps() == batch.trace.dumps()

    def test_perf_gauges_do_not_touch_the_trace(self):
        _, batch = run_traced(serve_cfg())
        svc = SimulatorService(serve_cfg(perf_gauges=True))
        svc.run_to_completion()
        assert svc.sim.trace.dumps() == batch.trace.dumps()
        eps = svc.sim.metrics.get_value("sim.epochs_per_second")
        ops = svc.sim.metrics.get_value("serve.ops_per_second")
        assert eps is not None and eps > 0
        assert ops is not None and ops > 0

    def test_batch_run_has_no_perf_gauges_by_default(self):
        _, sim = run_traced(serve_cfg())
        assert sim.metrics.get_value("sim.epochs_per_second") is None


# ----------------------------------------------------- incremental simulator
class TestIncrementalSimulator:
    def test_step_tick_protocol_equals_run(self):
        a = build_simulator(serve_cfg())
        b = build_simulator(serve_cfg())
        a.run()
        b.start()
        while b.step_tick():
            pass
        b.finish()
        assert b.trace.dumps() == a.trace.dumps()
        assert b.tick == a.tick and b.epoch == a.epoch

    def test_step_tick_false_after_completion(self):
        sim = build_simulator(serve_cfg())
        sim.start()
        while sim.step_tick():
            pass
        assert sim.step_tick() is False

    def test_set_epoch_len_rebases_boundary(self):
        sim = build_simulator(serve_cfg())
        sim.start()
        for _ in range(5):  # exactly one epoch at epoch_len=5
            sim.step_tick()
        assert sim.epoch == 1
        sim.set_epoch_len(3)
        assert sim.config.epoch_len == 3
        before = sim.epoch
        for _ in range(3):
            sim.step_tick()
        assert sim.epoch == before + 1

    def test_set_epoch_len_rejects_nonpositive(self):
        sim = build_simulator(serve_cfg())
        with pytest.raises(ValueError):
            sim.set_epoch_len(0)


# ------------------------------------------------------------------ eventbus
class TestEventBus:
    def test_fanout_and_unsubscribe(self):
        bus = EventBus(capacity=8)
        a, b = bus.subscribe(), bus.subscribe()
        assert bus.subscribers == 2
        bus.publish("x")
        assert a.get(timeout=1) == "x"
        assert b.get(timeout=1) == "x"
        b.close()
        assert bus.subscribers == 1
        bus.publish("y")
        assert a.get(timeout=1) == "y"
        assert b.qsize() == 0

    def test_slow_consumer_drops_never_blocks(self):
        class Counter:
            n = 0

            def inc(self, v: float = 1.0) -> None:
                self.n += v

        counter = Counter()
        bus = EventBus(capacity=4, drop_counter=counter)
        sub = bus.subscribe()
        for i in range(10):
            bus.publish(i)
        assert bus.published == 10
        assert sub.dropped == 6
        assert bus.dropped == 6
        assert counter.n == 6
        # the retained prefix is the oldest events, in order
        assert [sub.get(timeout=1) for _ in range(4)] == [0, 1, 2, 3]

    def test_publish_without_subscribers_is_free(self):
        bus = EventBus(capacity=2)
        bus.publish("ignored")
        assert bus.dropped == 0


# ----------------------------------------------------------------- mutations
class TestMutations:
    def test_mutations_apply_at_epoch_boundary(self):
        svc = SimulatorService(serve_cfg())
        svc.start()
        queued = svc.queue_mutations({"if_threshold": 0.5, "epoch_len": 7})
        assert queued == 2
        svc.run_to_completion()
        assert svc.mutations_applied == 2
        assert svc.sim.balancer.initiator_config.if_threshold == 0.5
        assert svc.sim.config.epoch_len == 7
        changed = svc.sim.trace.events("config_changed")
        assert [e.key for e in changed] == ["if_threshold", "epoch_len"]
        # applied at the first boundary after queueing, with fresh dids
        assert all(e.tick == changed[0].tick for e in changed)
        assert changed[0].did >= 0 and changed[1].did == changed[0].did + 1
        assert svc.sim.metrics.get_value("serve.config_changes") == 2

    def test_balancer_swap_changes_decisions(self):
        svc = SimulatorService(serve_cfg())
        svc.start()
        svc.queue_mutations({"balancer": "nop"})
        svc.run_to_completion()
        assert type(svc.sim.balancer).__name__ == "NopBalancer"
        changed = svc.sim.trace.events("config_changed")
        assert changed and changed[0].value == "nop"

    def test_explain_surfaces_config_changes(self):
        svc = SimulatorService(serve_cfg())
        svc.start()
        svc.queue_mutations({"if_threshold": 0.9})
        svc.run_to_completion()
        report = explain(svc.sim.trace.events())
        buckets = [b for b in report["epochs"] if b["config"]]
        assert len(buckets) == 1
        (entry,) = buckets[0]["config"]
        assert entry["key"] == "if_threshold" and entry["value"] == "0.9"
        text = render_explain(report)
        assert "config_changed" in text and "if_threshold" in text

    def test_bad_mutations_rejected_before_queueing(self):
        svc = SimulatorService(serve_cfg())
        with pytest.raises(MutationError, match="settable"):
            svc.queue_mutations({"not_a_knob": 1})
        with pytest.raises(MutationError):
            svc.queue_mutations({"epoch_len": -3})
        with pytest.raises(MutationError):
            svc.queue_mutations({"if_threshold": "nan-ish-garbage"})
        with pytest.raises(MutationError):
            svc.queue_mutations({"balancer": "definitely-not-registered"})
        with pytest.raises(MutationError):
            svc.queue_mutations({})
        assert not svc._pending

    def test_initiator_knobs_need_an_initiator(self):
        svc = SimulatorService(ExperimentConfig(
            workload="mdtest", balancer="nop", n_clients=8, seed=7,
            scale=0.15, sim=SERVE_SIM))
        with pytest.raises(MutationError, match="initiator"):
            svc.queue_mutations({"if_threshold": 0.5})


# -------------------------------------------------------------- control plane
class TestControlPlane:
    @pytest.fixture()
    def plane(self):
        svc = SimulatorService(serve_cfg(record=True), tick_slice=16)
        plane = ControlPlane(svc, port=0)
        plane.start()
        yield svc, plane
        plane.stop()

    def test_status_metrics_timeseries_and_404(self, plane):
        svc, plane = plane
        svc.start()
        svc.pause()
        code, ctype, body = _get(plane.url + "/status")
        assert code == 200 and "application/json" in ctype
        doc = json.loads(body)
        assert doc["state"] == "paused"
        assert doc["n_mds"] == 3 and len(doc["loads"]) == 3

        code, ctype, body = _get(plane.url + "/metrics")
        assert code == 200 and ctype == OPENMETRICS_CONTENT_TYPE
        families = parse_openmetrics(body.decode())
        # registered at construction, present from tick 0 onward
        assert "trace_events_dropped" in families
        assert "serve_events_dropped" in families

        code, _, body = _get(plane.url + "/timeseries")
        assert code == 200
        ts = json.loads(body)
        assert set(ts) >= {"columns", "rows", "appended"}

        with pytest.raises(urllib.error.HTTPError) as err:
            _get(plane.url + "/nope")
        assert err.value.code == 404

    def test_lifecycle_step_and_config_over_http(self, plane):
        svc, plane = plane
        svc.start()
        svc.pause()
        tick0 = svc.sim.tick
        code, doc = _post(plane.url + "/step", {"ticks": 4})
        assert code == 200
        # grant is consumed by the driver; emulate one slice inline
        with svc.lock:
            svc._advance(svc._step_budget)
            svc._step_budget = 0
        assert svc.sim.tick == tick0 + 4

        code, doc = _post(plane.url + "/config", {"if_threshold": 0.42})
        assert code == 202 and doc["queued"] == 1

        with pytest.raises(urllib.error.HTTPError) as err:
            _post(plane.url + "/config", {"bogus": 1})
        assert err.value.code == 400
        assert "settable" in json.loads(err.value.read())["error"]

        code, doc = _post(plane.url + "/resume")
        assert code == 200 and svc.state == "running"
        code, doc = _post(plane.url + "/pause")
        assert code == 200 and svc.state == "paused"
        code, doc = _post(plane.url + "/shutdown")
        assert code == 200 and doc["stopping"] is True
        assert svc._stop_requested

    def test_metrics_scrape_roundtrip_under_concurrent_ticking(self):
        # satellite: live /metrics must stay parseable by the repo's own
        # OpenMetrics parser while the simulation is mutating the registry
        svc = SimulatorService(serve_cfg(perf_gauges=True), tick_slice=8)
        plane = ControlPlane(svc, port=0)
        plane.start()
        svc.start()
        driver = threading.Thread(
            target=lambda: asyncio.run(svc.drive()), daemon=True)
        driver.start()
        try:
            scrapes = 0
            while not svc.finished and scrapes < 50:
                _, ctype, body = _get(plane.url + "/metrics")
                assert ctype == OPENMETRICS_CONTENT_TYPE
                families = parse_openmetrics(body.decode())
                assert "mds_load" in families
                scrapes += 1
            assert scrapes > 0
            driver.join(timeout=30)
            assert svc.finished
            # final scrape round-trips the live registry faithfully
            _, _, body = _get(plane.url + "/metrics")
            families = parse_openmetrics(body.decode())
            (sample,) = families["sim_ops_served"]["samples"]
            assert sample[2] == pytest.approx(
                svc.sim.metrics.get_value("sim.ops_served"))
            (sample,) = families["sim_epochs_per_second"]["samples"]
            assert sample[2] == pytest.approx(
                svc.sim.metrics.get_value("sim.epochs_per_second"))
        finally:
            svc.request_stop()
            plane.stop()

    def test_event_stream_delivers_config_changed(self):
        svc = SimulatorService(serve_cfg(), tick_slice=4, rate=400)
        plane = ControlPlane(svc, port=0)
        plane.start()
        svc.start()
        driver = threading.Thread(
            target=lambda: asyncio.run(svc.drive()), daemon=True)
        try:
            lines: list[dict] = []

            def consume():
                with urllib.request.urlopen(plane.url + "/events",
                                            timeout=30) as resp:
                    for raw in resp:
                        if raw.strip():
                            lines.append(json.loads(raw))

            reader = threading.Thread(target=consume, daemon=True)
            reader.start()
            driver.start()
            _post(plane.url + "/config", {"if_threshold": 0.33})
            driver.join(timeout=60)
            reader.join(timeout=30)
            assert svc.finished
            etypes = {line["e"] for line in lines}
            assert "config_changed" in etypes
            assert "epoch_start" in etypes
        finally:
            svc.request_stop()
            plane.stop()


# ----------------------------------------------------------------- dashboard
class TestDashboard:
    def _status(self) -> dict:
        svc = SimulatorService(serve_cfg(record=True, perf_gauges=True))
        svc.run_to_completion()
        return svc.status()

    def test_render_top_snapshot(self):
        status = self._status()
        screen = render_top(status)
        assert "mdtest" in screen and "lunule" in screen
        assert "mds.0" in screen and "mds.2" in screen
        assert f"tick {status['tick']}" in screen
        assert "IF" in screen

    def test_render_top_warns_on_drops(self):
        status = self._status()
        status["bus"]["dropped"] = 9
        status["trace"]["dropped"] = 2
        screen = render_top(status)
        assert "trace ring dropped 2" in screen
        assert "event bus dropped 9" in screen

    def test_render_top_marks_failed_mds(self):
        status = self._status()
        status["failed"] = [1]
        screen = render_top(status)
        line = next(ln for ln in screen.splitlines() if "mds.1" in ln)
        assert "DOWN" in line


class TestLedgerPlane:
    """The live cost/benefit ledger and workload line on /status + top."""

    def _status(self) -> dict:
        svc = SimulatorService(
            serve_cfg(record=True, perf_gauges=True, workload_profile=True))
        svc.run_to_completion()
        return svc.status()

    def test_status_carries_the_ledger(self):
        status = self._status()
        outcomes = status["outcomes"]
        assert outcomes is not None
        assert set(outcomes) >= {"verdicts", "judged", "efficiency",
                                 "moved_inodes", "aborted_inodes",
                                 "migrations_in", "migrations_out"}
        assert set(outcomes["verdicts"]) == {"paid_off", "neutral",
                                             "wasted", "ping_pong"}
        assert outcomes["judged"] == sum(outcomes["verdicts"].values())
        assert outcomes["judged"] > 0  # the serve scenario migrates
        n_mds = len(status["loads"])
        assert len(outcomes["migrations_in"]) == n_mds
        assert sum(outcomes["migrations_in"]) == sum(
            outcomes["migrations_out"]) == outcomes["judged"]

    def test_status_carries_the_workload_profile(self):
        profile = self._status()["workload_profile"]
        assert profile is not None
        assert 0.0 <= profile["heat_gini"] <= 1.0
        assert profile["op_mix"] in ("idle", "create_heavy", "scan_heavy",
                                     "read_heavy", "mixed")

    def test_render_top_shows_ledger_and_workload(self):
        status = self._status()
        screen = render_top(status)
        judged = status["outcomes"]["judged"]
        assert f"ledger {judged} judged:" in screen
        assert "paid_off=" in screen and "ping_pong=" in screen
        assert "workload " in screen and "heat gini" in screen
        mds0 = next(ln for ln in screen.splitlines() if "mds.0" in ln)
        assert " in " in mds0 and " out " in mds0

    def test_ledger_gauges_reach_the_metrics_registry(self):
        svc = SimulatorService(serve_cfg(record=True, workload_profile=True))
        svc.run_to_completion()
        m = svc.sim.metrics
        judged = sum(
            m.get_value("outcome.migrations", verdict=v) or 0.0
            for v in ("paid_off", "neutral", "wasted", "ping_pong"))
        assert judged == svc.status()["outcomes"]["judged"]
        assert m.get_value("outcome.aborted_inodes") is not None

    def test_ledger_off_without_profiling_still_populates(self):
        # the ledger reads the trace, so it works with profiling off too
        svc = SimulatorService(serve_cfg(record=True))
        svc.run_to_completion()
        status = svc.status()
        assert status["outcomes"] is not None
        assert status["workload_profile"] is None


# ------------------------------------------------------------ report banner
class TestReportWarnings:
    def _report(self, metrics: dict, timeseries: dict | None = None) -> str:
        return render_run_report({}, timeseries=timeseries or {},
                                 events=[], metrics=metrics,
                                 span_events=[], chaos=None)

    @staticmethod
    def _counter(value: float) -> dict:
        return {"kind": "counter", "help": "",
                "series": [{"labels": {}, "value": value}]}

    def test_clean_run_has_no_banner(self):
        report = self._report({"trace.events_dropped": self._counter(0.0)})
        assert "Warning" not in report

    def test_banner_lists_each_loss_channel(self):
        report = self._report(
            {"trace.events_dropped": self._counter(5.0),
             "serve.events_dropped": self._counter(3.0)},
            timeseries={"columns": [], "rows": [[0.0]], "appended": 4})
        assert "observability data was dropped" in report
        assert "decision-trace ring dropped 5" in report
        assert "evicted 3 of 4" in report
        assert "event bus dropped 3" in report
        # the banner leads the report, before any metric section
        assert report.index("Warning") < report.index("## Counters")

    def test_throughput_section_renders_perf_gauges(self):
        metrics = {
            "sim.epochs_per_second": {
                "kind": "gauge", "help": "",
                "series": [{"labels": {}, "value": 12.5}]},
            "serve.ops_per_second": {
                "kind": "gauge", "help": "",
                "series": [{"labels": {}, "value": 1000.0}]},
        }
        report = self._report(metrics)
        assert "## Throughput" in report
        assert "epochs / second" in report and "12.5" in report
        assert "served ops / second" in report

    def test_no_throughput_section_without_gauges(self):
        assert "## Throughput" not in self._report({})
