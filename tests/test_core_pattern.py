"""Pattern Analyzer: alpha/beta/l_t/l_s under canonical access patterns."""

import pytest

from repro.cluster.stats import AccessStats
from repro.core.pattern import analyze
from repro.namespace.builder import build_fanout, build_private_dirs


def scan_dir(stats, d, n):
    for i in range(n):
        stats.record_file_access(d, i)


class TestScanPattern:
    """CNN/NLP-style: every file touched once, never again."""

    def test_active_dir_is_spatial(self):
        b = build_fanout(5, 20)
        stats = AccessStats(b.tree, sibling_probability=0.0, seed=1)
        d = b.dirs[0]
        scan_dir(stats, d, 10)  # half scanned
        stats.end_epoch()
        p = analyze(stats)
        assert p.alpha[d] == 0.0
        assert p.beta[d] == pytest.approx(1.0)  # 10 unvisited / 10 visits
        assert p.l_s[d] == 10
        assert p.mindex[d] > 0

    def test_fully_scanned_dir_decays_to_zero(self):
        b = build_fanout(5, 10)
        stats = AccessStats(b.tree, recurrence_window=2, pattern_windows=2,
                            sibling_probability=0.0, seed=1)
        d = b.dirs[0]
        scan_dir(stats, d, 10)
        stats.end_epoch()
        stats.end_epoch()
        p = analyze(stats)
        # no unvisited stock left within the window, no recurrence: dead
        assert p.mindex[d] == pytest.approx(0.0)

    def test_unvisited_sibling_gets_predicted_load(self):
        b = build_fanout(5, 20)
        stats = AccessStats(b.tree, sibling_probability=1.0, seed=1)
        scan_dir(stats, b.dirs[0], 20)
        stats.end_epoch()
        p = analyze(stats)
        sibling_mindex = [p.mindex[d] for d in b.dirs[1:]]
        assert max(sibling_mindex) > 0  # the bonus landed somewhere
        bonus_dir = b.dirs[1:][sibling_mindex.index(max(sibling_mindex))]
        assert p.beta[bonus_dir] == pytest.approx(1.0)


class TestRecurrentPattern:
    """Zipf/Web-style: the same files re-touched every epoch."""

    def test_alpha_dominates(self):
        b = build_private_dirs(2, 10)
        stats = AccessStats(b.tree, sibling_probability=0.0, seed=1)
        d = b.dirs[0]
        for _ in range(3):
            scan_dir(stats, d, 10)
            stats.end_epoch()
        p = analyze(stats)
        assert p.alpha[d] > 0.6
        assert p.mindex[d] > 0
        # mindex tracks the visit rate through the l_t term
        assert p.l_t[d] >= 20

    def test_mindex_follows_recent_rate_not_history(self):
        b = build_private_dirs(2, 10)
        stats = AccessStats(b.tree, pattern_windows=2, sibling_probability=0.0,
                            seed=1)
        d = b.dirs[0]
        for _ in range(3):
            scan_dir(stats, d, 10)
            stats.end_epoch()
        hot = analyze(stats).mindex[d]
        for _ in range(3):
            stats.end_epoch()  # gone cold
        cold = analyze(stats).mindex[d]
        assert cold < hot / 5


class TestCreatePattern:
    """MDtest-style: a stream of brand-new inodes."""

    def test_creates_keep_beta_high(self):
        b = build_private_dirs(2, 0)
        stats = AccessStats(b.tree, sibling_probability=0.0, seed=1)
        d = b.dirs[0]
        for _ in range(2):
            for _ in range(20):
                idx = b.tree.add_files(d, 1)
                stats.record_file_access(d, idx, created=True)
            stats.end_epoch()
        p = analyze(stats)
        assert p.beta[d] == pytest.approx(1.0)
        assert p.mindex[d] >= 20  # ~ the create rate per window


class TestColdDirs:
    def test_untouched_dir_has_zero_mindex(self):
        b = build_fanout(3, 10)
        stats = AccessStats(b.tree, sibling_probability=0.0, seed=1)
        stats.end_epoch()
        p = analyze(stats)
        for d in b.dirs:
            assert p.mindex[d] == 0.0
            assert p.beta[d] == 1.0  # full unvisited stock, but no l_s
