"""Bounded Zipf sampler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.rng import substream
from repro.util.zipf import ZipfSampler


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            ZipfSampler(10, exponent=-1.0)

    def test_head_mass_bad_fraction(self):
        s = ZipfSampler(10, rng=substream(0))
        with pytest.raises(ValueError):
            s.head_mass(0.0)
        with pytest.raises(ValueError):
            s.head_mass(1.5)


class TestDistribution:
    def test_scalar_sample_in_range(self):
        s = ZipfSampler(100, rng=substream(1))
        for _ in range(50):
            assert 0 <= s.sample() < 100

    def test_vector_sample_in_range(self):
        s = ZipfSampler(100, rng=substream(1))
        out = s.sample(1000)
        assert out.min() >= 0 and out.max() < 100

    def test_eighty_twenty(self):
        # Paper Table 1: "80% of requests are touching 20% of files".
        s = ZipfSampler(10_000, exponent=1.0, rng=substream(2), permute=False)
        assert 0.55 <= s.head_mass(0.2) <= 0.95

    def test_exponent_zero_is_uniform(self):
        s = ZipfSampler(100, exponent=0.0, rng=substream(3))
        assert s.head_mass(0.2) == pytest.approx(0.2, abs=0.01)

    def test_higher_exponent_more_skew(self):
        lo = ZipfSampler(1000, 0.5, rng=substream(4)).head_mass(0.1)
        hi = ZipfSampler(1000, 1.5, rng=substream(4)).head_mass(0.1)
        assert hi > lo

    def test_empirical_matches_head_mass(self):
        s = ZipfSampler(50, exponent=1.0, rng=substream(5), permute=False)
        draws = s.sample(20_000)
        top10 = set(range(10))  # unpermuted: hottest are ranks 0..9
        frac = np.isin(draws, list(top10)).mean()
        assert frac == pytest.approx(s.head_mass(0.2), abs=0.03)

    def test_permutation_scatters_hot_items(self):
        a = ZipfSampler(1000, rng=substream(6), permute=True)
        counts = np.bincount(a.sample(5000), minlength=1000)
        assert int(counts.argmax()) != 0 or counts[0] < 5000  # not all at index 0

    def test_deterministic_with_same_rng_seed(self):
        a = ZipfSampler(100, rng=substream(7)).sample(20)
        b = ZipfSampler(100, rng=substream(7)).sample(20)
        assert np.array_equal(a, b)

    @given(st.integers(1, 500), st.floats(0.0, 2.0))
    @settings(max_examples=30, deadline=None)
    def test_head_mass_monotone_in_fraction(self, n, expo):
        s = ZipfSampler(n, expo, rng=substream(8))
        assert s.head_mass(0.1) <= s.head_mass(0.5) <= s.head_mass(1.0) <= 1.0 + 1e-9
