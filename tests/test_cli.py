"""The command-line interface."""

import io

import pytest

from repro.cli import FIGURES, build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "bogus"])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestList:
    def test_lists_everything(self):
        code, text = run_cli("list")
        assert code == 0
        for token in ("lunule", "vanilla", "dirhash", "cnn", "mixed", "fig6"):
            assert token in text


class TestRun:
    def test_run_summary(self):
        code, text = run_cli("run", "-w", "zipf", "-b", "lunule",
                             "-c", "6", "-m", "3", "--scale", "0.2")
        assert code == 0
        assert "Simulation summary" in text
        assert "mean imbalance factor" in text
        assert "zipf" in text and "lunule" in text

    def test_run_with_data_path(self):
        code, text = run_cli("run", "-w", "zipf", "-b", "nop", "-c", "4",
                             "-m", "2", "--scale", "0.1", "--data-path")
        assert code == 0
        assert "metadata-op ratio" in text

    def test_seed_changes_nothing_but_is_accepted(self):
        code, _ = run_cli("run", "-w", "mdtest", "-b", "vanilla", "-c", "4",
                          "-m", "2", "--scale", "0.1", "--seed", "11")
        assert code == 0


class TestOverhead:
    def test_overhead_report(self):
        code, text = run_cli("overhead", "-m", "3")
        assert code == 0
        assert "Overhead accounting" in text
        assert "gossip" in text


class TestFigure:
    def test_table1(self):
        code, text = run_cli("figure", "table1", "--scale", "0.5")
        assert code == 0
        assert "Table 1" in text

    def test_fig2(self):
        code, text = run_cli("figure", "fig2", "--scale", "0.3")
        assert code == 0
        assert "Figure 2" in text

    def test_all_figures_registered(self):
        # every paper figure has a CLI id
        expected = {"table1", "fig2", "fig3", "fig4", "fig6", "fig7", "fig8",
                    "fig9", "fig10", "fig11", "fig12a", "fig12b", "fig13a",
                    "fig13b", "fig14"}
        assert expected == set(FIGURES)
