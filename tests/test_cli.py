"""The command-line interface."""

import io

import pytest

from repro.cli import FIGURES, build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "bogus"])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestList:
    def test_lists_everything(self):
        code, text = run_cli("list")
        assert code == 0
        for token in ("lunule", "vanilla", "dirhash", "cnn", "mixed", "fig6"):
            assert token in text


class TestRun:
    def test_run_summary(self):
        code, text = run_cli("run", "-w", "zipf", "-b", "lunule",
                             "-c", "6", "-m", "3", "--scale", "0.2")
        assert code == 0
        assert "Simulation summary" in text
        assert "mean imbalance factor" in text
        assert "zipf" in text and "lunule" in text

    def test_run_with_data_path(self):
        code, text = run_cli("run", "-w", "zipf", "-b", "nop", "-c", "4",
                             "-m", "2", "--scale", "0.1", "--data-path")
        assert code == 0
        assert "metadata-op ratio" in text

    def test_seed_changes_nothing_but_is_accepted(self):
        code, _ = run_cli("run", "-w", "mdtest", "-b", "vanilla", "-c", "4",
                          "-m", "2", "--scale", "0.1", "--seed", "11")
        assert code == 0


class TestRecordAndReport:
    RUN_ARGS = ("run", "-w", "mdtest", "-b", "lunule", "-c", "6", "-m", "3",
                "--scale", "0.1")

    def test_record_then_report_round_trip(self, tmp_path):
        run_dir = tmp_path / "flight"
        code, text = run_cli(*self.RUN_ARGS, "--record", str(run_dir))
        assert code == 0
        assert "recorded" in text
        for name in ("run.json", "timeseries.csv", "trace.jsonl",
                     "metrics.json", "metrics.prom", "spans.perfetto.json"):
            assert (run_dir / name).exists(), f"missing artifact {name}"

        code, text = run_cli("report", str(run_dir), "--html")
        assert code == 0
        assert "# Run report" in text
        assert "## Imbalance-factor trajectory" in text
        assert (run_dir / "report.md").exists()
        assert (run_dir / "report.html").exists()

    def test_recorded_artifacts_are_deterministic(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        run_cli(*self.RUN_ARGS, "--record", str(a))
        run_cli(*self.RUN_ARGS, "--record", str(b))
        for name in ("timeseries.csv", "spans.perfetto.json", "metrics.prom"):
            assert (a / name).read_bytes() == (b / name).read_bytes(), name

    def test_prom_artifact_passes_the_self_check(self, tmp_path):
        from repro.obs.prom import parse_openmetrics

        run_dir = tmp_path / "flight"
        run_cli(*self.RUN_ARGS, "--record", str(run_dir))
        families = parse_openmetrics(
            (run_dir / "metrics.prom").read_text(encoding="utf-8"))
        assert "sim_epochs" in families

    def test_report_on_a_non_artifact_dir_fails(self, tmp_path, capsys):
        code = main(["report", str(tmp_path)], out=io.StringIO())
        assert code == 2
        assert "repro run --record" in capsys.readouterr().err


class TestTraceFilters:
    TRACE_ARGS = ("trace", "-w", "mdtest", "-b", "lunule", "-c", "6",
                  "-m", "3", "--scale", "0.1")

    def test_etype_filter_limits_the_dump(self, tmp_path):
        from repro.obs.tracelog import read_jsonl

        out_path = tmp_path / "t.jsonl"
        code, text = run_cli(*self.TRACE_ARGS, "--etype", "epoch_start",
                             "-o", str(out_path))
        assert code == 0
        assert "filters kept" in text
        events = list(read_jsonl(out_path))
        assert events
        assert {e.etype for e in events} == {"epoch_start"}

    def test_epoch_range_filter(self, tmp_path):
        from repro.obs.tracelog import read_jsonl

        out_path = tmp_path / "t.jsonl"
        code, _ = run_cli(*self.TRACE_ARGS, "--epoch-range", "0:1",
                          "-o", str(out_path))
        assert code == 0
        starts = [e for e in read_jsonl(out_path) if e.etype == "epoch_start"]
        assert [e.epoch for e in starts] == [0, 1]

    def test_filters_apply_to_existing_files_too(self, tmp_path):
        from repro.obs.tracelog import read_jsonl

        full = tmp_path / "full.jsonl"
        run_cli(*self.TRACE_ARGS, "-o", str(full))
        sliced = tmp_path / "sliced.jsonl"
        code, text = run_cli("trace", "--from", str(full),
                             "--etype", "migration_committed",
                             "--epoch-range", "1:",
                             "-o", str(sliced))
        assert code == 0
        n_full = len(list(read_jsonl(full)))
        events = list(read_jsonl(sliced))
        assert len(events) < n_full
        assert all(e.etype == "migration_committed" for e in events)

    def test_bad_epoch_range_is_a_usage_error(self, capsys):
        code = main([*self.TRACE_ARGS, "--epoch-range", "5:2"],
                    out=io.StringIO())
        assert code == 2
        assert "epoch-range" in capsys.readouterr().err

    def test_unknown_etype_rejected_by_the_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--etype", "bogus"])


class TestSweepRecord:
    def test_sweep_record_writes_the_aggregate(self, tmp_path):
        import json

        run_dir = tmp_path / "sweep"
        code, text = run_cli("sweep", "-w", "mdtest", "-b", "vanilla",
                             "lunule", "-c", "6", "--scale", "0.1",
                             "-j", "1", "--record", str(run_dir))
        assert code == 0
        assert "recorded aggregate observability" in text
        with open(run_dir / "aggregate.json", encoding="utf-8") as fh:
            agg = json.load(fh)
        assert set(agg) == {"metrics", "spans", "runs"}
        assert set(agg["runs"]) == {"mdtestxvanilla", "mdtestxlunule"}
        assert (run_dir / "sweep.perfetto.json").exists()
        assert (run_dir / "metrics.prom").exists()


class TestOverhead:
    def test_overhead_report(self):
        code, text = run_cli("overhead", "-m", "3")
        assert code == 0
        assert "Overhead accounting" in text
        assert "gossip" in text


class TestFigure:
    def test_table1(self):
        code, text = run_cli("figure", "table1", "--scale", "0.5")
        assert code == 0
        assert "Table 1" in text

    def test_fig2(self):
        code, text = run_cli("figure", "fig2", "--scale", "0.3")
        assert code == 0
        assert "Figure 2" in text

    def test_all_figures_registered(self):
        # every paper figure has a CLI id
        expected = {"table1", "fig2", "fig3", "fig4", "fig6", "fig7", "fig8",
                    "fig9", "fig10", "fig11", "fig12a", "fig12b", "fig13a",
                    "fig13b", "fig14"}
        assert expected == set(FIGURES)


class TestExplainAndDiff:
    RUN = ("run", "-w", "mdtest", "-b", "lunule", "-c", "6", "-m", "3",
           "--scale", "0.1")

    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("prov-runs")
        a, b = base / "a", base / "b"
        assert run_cli(*self.RUN, "--seed", "7", "--record", str(a))[0] == 0
        assert run_cli(*self.RUN, "--seed", "11", "--record", str(b))[0] == 0
        return a, b

    def test_explain_renders_chains_and_summary(self, runs):
        code, text = run_cli("explain", str(runs[0]))
        assert code == 0
        assert "migration" in text and "summary:" in text
        assert "if_computed[" in text  # chains start at the IF root

    def test_explain_json_is_valid(self, runs):
        import json

        code, text = run_cli("explain", str(runs[0]), "--format", "json")
        assert code == 0
        report = json.loads(text)
        assert set(report) == {"epochs", "summary"}
        assert report["summary"]["migrations"] > 0

    def test_explain_epoch_filter(self, runs):
        import json

        code, text = run_cli("explain", str(runs[0]), "--epoch", "0",
                             "--format", "json")
        assert code == 0
        report = json.loads(text)
        assert [b["epoch"] for b in report["epochs"]] in ([], [0])

    def test_explain_rank_and_subtree_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explain", "x", "--rank", "1",
                                       "--subtree", "7"])

    def test_explain_missing_run_fails(self, tmp_path, capsys):
        code = main(["explain", str(tmp_path / "nope")], out=io.StringIO())
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_diff_identical_runs_exit_zero(self, runs):
        code, text = run_cli("diff", str(runs[0]), str(runs[0]))
        assert code == 0
        assert "no divergence" in text

    def test_diff_divergent_runs_exit_one(self, runs):
        code, text = run_cli("diff", str(runs[0]), str(runs[1]))
        assert code == 1
        assert "first divergence at epoch" in text
        assert "run A" in text and "run B" in text

    def test_diff_json(self, runs):
        import json

        code, text = run_cli("diff", str(runs[0]), str(runs[1]),
                             "--format", "json")
        assert code == 1
        report = json.loads(text)
        assert report["divergent"] is True
        assert "first_divergence" in report

    def test_diff_missing_side_fails(self, runs, tmp_path, capsys):
        code = main(["diff", str(runs[0]), str(tmp_path / "nope")],
                    out=io.StringIO())
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_decision_filter_slices_one_chain(self, runs, tmp_path):
        from repro.obs.provenance import ProvenanceGraph
        from repro.obs.tracelog import read_jsonl

        full = runs[0] / "trace.jsonl"
        graph = ProvenanceGraph.from_jsonl(full)
        planned = next(e for e in graph.events
                       if e.etype == "migration_planned")
        sliced = tmp_path / "chain.jsonl"
        code, text = run_cli("trace", "--from", str(full),
                             "--decision", str(planned.did),
                             "-o", str(sliced))
        assert code == 0
        assert "filters kept" in text
        dids = {e.did for e in read_jsonl(sliced)}
        assert dids == graph.chain_ids(planned.did)
        assert planned.did in dids

    def test_trace_unknown_decision_fails(self, runs, capsys):
        full = runs[0] / "trace.jsonl"
        code = main(["trace", "--from", str(full), "--decision", "999999"],
                    out=io.StringIO())
        assert code == 2
        assert "not in this trace" in capsys.readouterr().err
