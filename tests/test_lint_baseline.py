"""Baseline ratchet, stale-suppression autofix and the github reporter."""

import io
import json
import pathlib
import shutil

import pytest

from repro.cli import main
from repro.lint import (
    Finding,
    check_baseline,
    fix_suppressions,
    lint_paths,
    load_baseline,
    render_github,
    write_baseline,
)
from repro.lint.baseline import BASELINE_VERSION, baseline_key
from repro.lint.engine import UNUSED_SUPPRESSION, LintResult

FIXTURES = pathlib.Path(__file__).resolve().parent / "lint_fixtures"


def _finding(path="repro/core/x.py", line=3, rule="wall-clock",
             message="calls time.time()"):
    return Finding(path=path, line=line, col=1, rule=rule, message=message)


def _result(*findings):
    return LintResult(findings=list(findings), checked=1)


# ------------------------------------------------------------------ ratchet
def test_baseline_round_trips(tmp_path):
    f = _finding()
    path = tmp_path / "baseline.json"
    assert write_baseline(_result(f, f, _finding(line=9, rule="str-hash")),
                          path) == 2
    counts = load_baseline(path)
    assert counts[baseline_key(f)] == 2
    doc = json.loads(path.read_text())
    assert doc["version"] == BASELINE_VERSION
    assert all("line" not in e for e in doc["findings"])


def test_check_accepts_baselined_findings_at_any_line(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(_result(_finding(line=3)), path)
    # the same finding drifted 40 lines down: still accepted
    new, stale = check_baseline(_result(_finding(line=43)), path)
    assert new == [] and stale == []


def test_check_fails_on_findings_beyond_the_count(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(_result(_finding()), path)
    second = _finding(line=50)
    new, stale = check_baseline(_result(_finding(), second), path)
    assert new == [second]
    assert stale == []


def test_check_reports_fixed_entries_as_stale(tmp_path):
    path = tmp_path / "baseline.json"
    fixed = _finding(rule="str-hash", message="hash() of str")
    write_baseline(_result(_finding(), fixed), path)
    new, stale = check_baseline(_result(_finding()), path)
    assert new == []
    assert stale == [baseline_key(fixed)]


def test_load_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError, match="version"):
        load_baseline(path)


def test_cli_baseline_write_then_check_ratchets(tmp_path):
    case = str(FIXTURES / "determinism")
    bl = str(tmp_path / "baseline.json")
    out = io.StringIO()
    rc = main(["lint", case, "--rule", "wall-clock",
               "--baseline", "write", "--baseline-file", bl], out=out)
    assert rc == 0
    assert "wrote" in out.getvalue()
    out = io.StringIO()
    rc = main(["lint", case, "--rule", "wall-clock",
               "--baseline", "check", "--baseline-file", bl], out=out)
    assert rc == 0
    assert "0 error(s)" in out.getvalue()
    # a new rule's findings are not in the baseline: the check fails
    rc = main(["lint", case, "--rule", "wall-clock", "--rule", "global-rng",
               "--baseline", "check", "--baseline-file", bl],
              out=io.StringIO())
    assert rc == 1


def test_cli_baseline_check_without_file_exits_two(tmp_path, capsys):
    rc = main(["lint", str(FIXTURES / "determinism"),
               "--baseline", "check",
               "--baseline-file", str(tmp_path / "missing.json")],
              out=io.StringIO())
    assert rc == 2
    assert "error:" in capsys.readouterr().err


# --------------------------------------------------------- suppression fix
def _copy_suppress(tmp_path) -> pathlib.Path:
    dst = tmp_path / "suppress"
    shutil.copytree(FIXTURES / "suppress", dst)
    return dst


def test_fix_suppressions_deletes_stale_directives(tmp_path):
    tree = _copy_suppress(tmp_path)
    result = lint_paths([tree], rules=["wall-clock"], root=tree)
    assert result.unused_suppressions
    removed = fix_suppressions(result.unused_suppressions)
    assert removed == len(result.unused_suppressions)
    again = lint_paths([tree], rules=["wall-clock"], root=tree)
    assert not any(f.rule == UNUSED_SUPPRESSION for f in again.findings)
    # the useful suppression in suppressed.py survived
    assert "disable=wall-clock" in \
        (tree / "repro" / "core" / "suppressed.py").read_text()


def test_fix_suppressions_preserves_surrounding_code(tmp_path):
    tree = _copy_suppress(tmp_path)
    before = (tree / "repro" / "core" / "unused.py").read_text()
    result = lint_paths([tree], rules=["wall-clock"], root=tree)
    fix_suppressions(result.unused_suppressions)
    after = (tree / "repro" / "core" / "unused.py").read_text()
    assert "return 1" in after and "return 2" in after
    assert "repro-lint" not in after
    assert len(after.splitlines()) == len(before.splitlines())


def test_cli_fix_suppressions_relints_clean(tmp_path):
    tree = _copy_suppress(tmp_path)
    out = io.StringIO()
    rc = main(["lint", str(tree), "--rule", "wall-clock",
               "--fix-suppressions"], out=out)
    assert rc == 0
    assert "re-linting" in out.getvalue()


# ------------------------------------------------------------------ github
def test_render_github_emits_workflow_commands():
    f = _finding(message="calls time.time()")
    text = render_github(_result(f))
    line = text.splitlines()[0]
    assert line.startswith("::error ")
    assert "file=repro/core/x.py" in line
    assert "line=3,col=1" in line
    assert "title=repro-lint wall-clock" in line
    assert line.endswith("::calls time.time()")


def test_render_github_escapes_message_and_properties():
    f = _finding(path="repro/core/a,b.py", message="bad: 50% drop\nnewline")
    line = render_github(_result(f)).splitlines()[0]
    assert "a%2Cb.py" in line
    assert "50%25 drop%0Anewline" in line
    assert "\n" not in line


def test_cli_format_github(tmp_path):
    out = io.StringIO()
    rc = main(["lint", str(FIXTURES / "determinism"), "--rule", "wall-clock",
               "--format", "github"], out=out)
    assert rc == 1
    text = out.getvalue()
    assert text.count("::error ") >= 2
    assert text.strip().splitlines()[-1].startswith("checked ")
