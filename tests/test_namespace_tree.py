"""NamespaceTree: structure, file state, traversal."""

import pytest

from repro.namespace.tree import NEVER_ACCESSED, NamespaceTree


class TestStructure:
    def test_root_exists(self):
        t = NamespaceTree()
        assert t.n_dirs == 1
        assert t.parent[0] == -1
        assert t.depth[0] == 0

    def test_add_dir_assigns_sequential_ids(self, tree):
        assert tree.n_dirs == 5
        # parent ids are always smaller than child ids (builders rely on it
        # for one-pass bottom-up aggregation)
        for d in range(1, tree.n_dirs):
            assert tree.parent[d] < d

    def test_add_dir_bad_parent(self, tree):
        with pytest.raises(IndexError):
            tree.add_dir(99, "x")

    def test_path(self, tree):
        assert tree.path(0) == "/"
        assert tree.path(1) == "/a"
        assert tree.path(3) == "/b/b1"

    def test_depth(self, tree):
        assert tree.depth[1] == 1
        assert tree.depth[3] == 2

    def test_children_recorded(self, tree):
        assert tree.children[0] == [1, 2]
        assert tree.children[2] == [3, 4]

    def test_ancestors_includes_self_and_root(self, tree):
        assert list(tree.ancestors(3)) == [3, 2, 0]
        assert list(tree.ancestors(0)) == [0]

    def test_walk_preorder_covers_all(self, tree):
        seen = list(tree.walk(0))
        assert sorted(seen) == list(range(tree.n_dirs))
        assert seen[0] == 0

    def test_walk_subtree_only(self, tree):
        assert sorted(tree.walk(2)) == [2, 3, 4]


class TestFiles:
    def test_add_files_returns_first_index(self, tree):
        first = tree.add_files(1, 5)
        assert first == 3  # dir a already had 3 files
        assert tree.n_files[1] == 8

    def test_add_files_negative_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.add_files(1, -1)

    def test_total_files(self, tree):
        assert tree.total_files() == 9

    def test_unvisited_tracks_adds(self, tree):
        assert tree.unvisited_files(1) == 3
        tree.add_files(1, 2)
        assert tree.unvisited_files(1) == 5


class TestTouch:
    def test_first_touch_returns_never(self, tree):
        assert tree.touch_file(1, 0, epoch=4) == NEVER_ACCESSED

    def test_second_touch_returns_prev_epoch(self, tree):
        tree.touch_file(1, 0, epoch=4)
        assert tree.touch_file(1, 0, epoch=9) == 4

    def test_touch_decrements_unvisited_once(self, tree):
        tree.touch_file(1, 0, epoch=1)
        tree.touch_file(1, 0, epoch=2)
        assert tree.unvisited_files(1) == 2

    def test_touch_out_of_range(self, tree):
        with pytest.raises(IndexError):
            tree.touch_file(1, 3, epoch=0)

    def test_touch_after_growth(self, tree):
        tree.touch_file(1, 0, epoch=1)
        idx = tree.add_files(1, 10)
        assert tree.touch_file(1, idx + 5, epoch=2) == NEVER_ACCESSED
        # earlier state survived the growth
        assert tree.touch_file(1, 0, epoch=3) == 1


class TestExtent:
    def test_extent_without_stops(self, tree):
        assert sorted(tree.subtree_extent(2)) == [2, 3, 4]

    def test_extent_stops_exclude_nested(self, tree):
        assert sorted(tree.subtree_extent(0, {2})) == [0, 1]

    def test_extent_root_in_stop_still_included(self, tree):
        assert sorted(tree.subtree_extent(2, {2, 3})) == [2, 4]

    def test_inode_count(self, tree):
        # dirs count as one inode each plus their files
        assert tree.inode_count([2, 3, 4]) == 3 + 2 + 4
        assert tree.inode_count([]) == 0
