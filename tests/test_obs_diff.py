"""Differential trace analysis (`repro diff`)."""

import json

from repro.balancers import make_balancer
from repro.cluster.simulator import SimConfig, Simulator
from repro.obs.diff import diff_traces, group_by_epoch, render_diff, signature
from repro.obs.events import (
    EpochSkipped,
    EpochStart,
    IfComputed,
    MigrationCommitted,
    MigrationPlanned,
    RoleAssigned,
    SubtreeSelected,
)
from repro.workloads import ZipfWorkload


def sim_trace(seed, **overrides):
    wl = ZipfWorkload(8, files_per_dir=60, reads_per_client=600)
    cfg = SimConfig(n_mds=3, mds_capacity=50, epoch_len=5, max_ticks=5000)
    if overrides:
        cfg = cfg.with_(**overrides)
    sim = Simulator(wl.materialize(seed=seed), make_balancer("lunule"), cfg)
    sim.run()
    return list(sim.trace)


def base_trace():
    return [
        EpochStart(epoch=0, tick=5),
        IfComputed(epoch=0, value=0.5, loads=(10.0, 0.0), source="initiator",
                   did=0),
        RoleAssigned(epoch=0, rank=0, role="exporter", amount=5.0,
                     did=1, parent=0),
        SubtreeSelected(epoch=0, exporter=0, importer=1, unit=7, load=5.0,
                        did=2, parent=1),
        MigrationPlanned(tick=5, src=0, dst=1, unit=7, inodes=11, load=5.0,
                         did=3, parent=2),
        EpochStart(epoch=1, tick=10),
        IfComputed(epoch=1, value=0.02, loads=(5.0, 5.0), source="initiator",
                   did=4),
        EpochSkipped(epoch=1, reason="if_below_threshold", value=0.02,
                     threshold=0.075, did=5, parent=4),
    ]


class TestSignature:
    def test_excludes_provenance_ids(self):
        a = IfComputed(epoch=0, value=0.5, loads=(1.0,), source="x", did=7,
                       parent=2)
        b = IfComputed(epoch=0, value=0.5, loads=(1.0,), source="x", did=99)
        assert signature(a) == signature(b)
        assert "did" not in signature(a) and "parent" not in signature(a)

    def test_distinguishes_content(self):
        a = IfComputed(epoch=0, value=0.5, loads=(1.0,), source="x")
        b = IfComputed(epoch=0, value=0.6, loads=(1.0,), source="x")
        assert signature(a) != signature(b)


class TestGroupByEpoch:
    def test_tick_events_attributed_through_boundaries(self):
        groups = group_by_epoch(base_trace())
        assert set(groups) == {0, 1}
        # the planned migration at tick 5 lands in epoch 0 (boundary rule)
        assert any(e.etype == "migration_planned" for e in groups[0])

    def test_boundary_less_tick_events_dropped(self):
        only = MigrationCommitted(tick=3, src=0, dst=1, unit=2, inodes=1)
        assert group_by_epoch([only]) == {}


class TestDiffTraces:
    def test_identical_traces_do_not_diverge(self):
        report = diff_traces(base_trace(), base_trace())
        assert report == {
            "divergent": False, "epochs_compared": 2,
            "events": {"a": 8, "b": 8},
        }

    def test_id_drift_alone_is_not_divergence(self):
        shifted = []
        for e in base_trace():
            did = getattr(e, "did", None)
            if did is None:
                shifted.append(e)
            else:
                shifted.append(type(e)(**{**{k: v for k, v in
                                             signature(e).items()
                                             if k != "e"},
                                          "did": did + 10,
                                          "parent": getattr(e, "parent")}))
        report = diff_traces(base_trace(), shifted)
        assert not report["divergent"]

    def test_first_divergence_located_with_both_chains(self):
        b = base_trace()
        b[3] = SubtreeSelected(epoch=0, exporter=0, importer=1, unit=9,
                               load=5.0, did=2, parent=1)
        b[4] = MigrationPlanned(tick=5, src=0, dst=1, unit=9, inodes=11,
                                load=5.0, did=3, parent=2)
        report = diff_traces(base_trace(), b)
        assert report["divergent"]
        fd = report["first_divergence"]
        assert fd["epoch"] == 0 and fd["index"] == 3
        assert fd["a"]["unit"] == 7 and fd["b"]["unit"] == 9
        # both sides carry the full root-first causal chain
        assert [d["e"] for d in fd["chain_a"]] == [
            "if_computed", "role_assigned", "subtree_selected"]
        assert fd["chain_b"][-1]["unit"] == 9

    def test_one_side_running_longer_diverges_at_the_tail(self):
        longer = base_trace() + [
            IfComputed(epoch=2, value=0.3, loads=(9.0, 1.0),
                       source="initiator", did=6),
        ]
        report = diff_traces(base_trace(), longer)
        assert report["divergent"]
        fd = report["first_divergence"]
        assert fd["epoch"] == 2
        assert fd["a"] is None and fd["b"]["e"] == "if_computed"
        assert fd["chain_a"] == []

    def test_input_deltas(self):
        b = [IfComputed(epoch=0, value=0.7, loads=(12.0, 0.0),
                        source="initiator", did=0)
             if e.etype == "if_computed" and e.epoch == 0 else e
             for e in base_trace()]
        report = diff_traces(base_trace(), b)
        inputs = report["first_divergence"]["inputs"]
        assert inputs["a"]["source"] == "initiator"
        assert inputs["if_delta"] == 0.7 - 0.5
        assert inputs["load_deltas"] == [2.0, 0.0]

    def test_load_delta_none_on_rank_count_mismatch(self):
        b = [IfComputed(epoch=0, value=0.5, loads=(10.0, 0.0, 0.0),
                        source="initiator", did=0)
             if e.etype == "if_computed" and e.epoch == 0 else e
             for e in base_trace()]
        report = diff_traces(base_trace(), b)
        assert report["first_divergence"]["inputs"]["load_deltas"] is None

    def test_report_is_json_ready(self):
        b = base_trace()[:-1]
        report = diff_traces(base_trace(), b)
        dumped = json.dumps(report, sort_keys=True)
        # stable under a decode/encode cycle (tuples flatten to lists once)
        assert json.dumps(json.loads(dumped), sort_keys=True) == dumped


class TestRenderDiff:
    def test_no_divergence_line(self):
        text = render_diff(diff_traces(base_trace(), base_trace()))
        assert text == "no divergence: 2 epochs, 8/8 events"

    def test_divergence_rendering_is_side_by_side(self):
        b = base_trace()
        b[1] = IfComputed(epoch=0, value=0.9, loads=(18.0, 0.0),
                          source="initiator", did=0)
        text = render_diff(diff_traces(base_trace(), b))
        assert "first divergence at epoch 0, event 1" in text
        assert "IF delta (b-a): +0.4000" in text
        assert "run A" in text and "| run B" in text

    def test_empty_side_rendered_as_placeholder(self):
        longer = base_trace() + [
            IfComputed(epoch=2, value=0.3, loads=(9.0, 1.0),
                       source="initiator", did=6),
        ]
        text = render_diff(diff_traces(base_trace(), longer))
        assert "(no event)" in text


class TestDiffOnRealRuns:
    def test_same_seed_runs_are_semantically_identical(self):
        report = diff_traces(sim_trace(3), sim_trace(3))
        assert not report["divergent"]

    def test_different_seeds_diverge_with_explained_fork(self):
        report = diff_traces(sim_trace(3), sim_trace(11))
        assert report["divergent"]
        fd = report["first_divergence"]
        assert fd["a"] is not None or fd["b"] is not None
        assert fd["inputs"]["a"] is not None
        # chains end at the divergent event itself
        for side, chain in (("a", fd["chain_a"]), ("b", fd["chain_b"])):
            if fd[side] is not None and chain:
                assert chain[-1]["e"] == fd[side]["e"]
        render_diff(report)  # must not raise

    def test_config_change_diverges(self):
        report = diff_traces(sim_trace(3), sim_trace(3, migration_rate=5))
        assert report["divergent"]
