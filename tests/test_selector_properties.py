"""Property-based tests of the Subtree Selector over random candidate sets."""

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.balancers.candidates import candidates_for
from repro.core.selector import SubtreeSelector
from repro.namespace.builder import build_fanout
from repro.namespace.dirfrag import FragId
from repro.namespace.subtree import AuthorityMap


def make_env(loads: list[int]):
    """A fanout namespace with one leaf dir per load entry."""
    built = build_fanout(max(1, len(loads)), 10)
    authmap = AuthorityMap(built.tree, 0)
    sim = SimpleNamespace(tree=built.tree, authmap=authmap)
    per_dir = np.zeros(built.tree.n_dirs)
    for d, load in zip(built.dirs, loads):
        per_dir[d] = float(load)
    return sim, candidates_for(sim, 0, per_dir)


loads_strategy = st.lists(st.integers(0, 100), min_size=1, max_size=20)
amount_strategy = st.floats(0.5, 300.0)


class TestSelectorProperties:
    @given(loads_strategy, amount_strategy)
    @settings(max_examples=60, deadline=None)
    def test_no_unit_selected_twice(self, loads, amount):
        sim, cands = make_env(loads)
        sel = SubtreeSelector(sim, cands)
        plans = sel.select(amount) + sel.select(amount)
        units = [p.unit for p in plans]
        assert len(units) == len(set(units))

    @given(loads_strategy, amount_strategy)
    @settings(max_examples=60, deadline=None)
    def test_all_plans_positive_load(self, loads, amount):
        sim, cands = make_env(loads)
        plans = SubtreeSelector(sim, cands).select(amount)
        assert all(p.load > 0 for p in plans)

    @given(loads_strategy, amount_strategy)
    @settings(max_examples=60, deadline=None)
    def test_selection_bounded_by_demand(self, loads, amount):
        # greedy never overshoots beyond tolerance; a path-1/2 single pick
        # may exceed by its 10% band
        sim, cands = make_env(loads)
        plans = SubtreeSelector(sim, cands).select(amount)
        got = sum(p.load for p in plans)
        assert got <= max(amount * 1.3, amount + 1.0)

    @given(loads_strategy, amount_strategy)
    @settings(max_examples=60, deadline=None)
    def test_no_ancestor_descendant_pairs(self, loads, amount):
        sim, cands = make_env(loads)
        plans = SubtreeSelector(sim, cands).select(amount)
        dir_units = [p.unit for p in plans if not isinstance(p.unit, FragId)]
        taken = set(dir_units)
        for d in dir_units:
            for a in sim.tree.ancestors(d):
                assert a == d or a not in taken

    @given(loads_strategy)
    @settings(max_examples=30, deadline=None)
    def test_zero_amount_empty(self, loads):
        sim, cands = make_env(loads)
        assert SubtreeSelector(sim, cands).select(0.0) == []

    @given(amount_strategy)
    @settings(max_examples=20, deadline=None)
    def test_cold_namespace_selects_nothing(self, amount):
        sim, cands = make_env([0, 0, 0, 0])
        assert SubtreeSelector(sim, cands).select(amount) == []

    @given(loads_strategy, amount_strategy)
    @settings(max_examples=40, deadline=None)
    def test_frag_plans_reference_real_splits(self, loads, amount):
        sim, cands = make_env(loads)
        plans = SubtreeSelector(sim, cands).select(amount)
        for p in plans:
            if isinstance(p.unit, FragId):
                state = sim.authmap.frag_state(p.unit.dir_id)
                assert state is not None
                assert state[0] == p.unit.bits
