"""Property-based tests of the Subtree Selector over random candidate sets."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.balancers.candidates import candidates_for
from repro.core.plan import EpochPlan
from repro.core.selector import SubtreeSelector
from repro.namespace.builder import build_fanout
from repro.namespace.dirfrag import FragId
from repro.namespace.subtree import AuthorityMap


def make_env(loads: list[int]):
    """A fanout namespace with one leaf dir per load entry."""
    built = build_fanout(max(1, len(loads)), 10)
    ns = AuthorityMap(built.tree, 0)
    per_dir = np.zeros(built.tree.n_dirs)
    for d, load in zip(built.dirs, loads):
        per_dir[d] = float(load)
    return ns, candidates_for(ns, 0, per_dir)


def selector_for(ns, cands) -> SubtreeSelector:
    return SubtreeSelector(EpochPlan.from_authority(ns), cands)


loads_strategy = st.lists(st.integers(0, 100), min_size=1, max_size=20)
amount_strategy = st.floats(0.5, 300.0)


class TestSelectorProperties:
    @given(loads_strategy, amount_strategy)
    @settings(max_examples=60, deadline=None)
    def test_no_unit_selected_twice(self, loads, amount):
        ns, cands = make_env(loads)
        sel = selector_for(ns, cands)
        plans = sel.select(amount) + sel.select(amount)
        units = [p.unit for p in plans]
        assert len(units) == len(set(units))

    @given(loads_strategy, amount_strategy)
    @settings(max_examples=60, deadline=None)
    def test_all_plans_positive_load(self, loads, amount):
        ns, cands = make_env(loads)
        plans = selector_for(ns, cands).select(amount)
        assert all(p.load > 0 for p in plans)

    @given(loads_strategy, amount_strategy)
    @settings(max_examples=60, deadline=None)
    def test_selection_bounded_by_demand(self, loads, amount):
        # greedy never overshoots beyond tolerance; a path-1/2 single pick
        # may exceed by its 10% band
        ns, cands = make_env(loads)
        plans = selector_for(ns, cands).select(amount)
        got = sum(p.load for p in plans)
        assert got <= max(amount * 1.3, amount + 1.0)

    @given(loads_strategy, amount_strategy)
    @settings(max_examples=60, deadline=None)
    def test_no_ancestor_descendant_pairs(self, loads, amount):
        ns, cands = make_env(loads)
        plans = selector_for(ns, cands).select(amount)
        dir_units = [p.unit for p in plans if not isinstance(p.unit, FragId)]
        taken = set(dir_units)
        for d in dir_units:
            for a in ns.tree.ancestors(d):
                assert a == d or a not in taken

    @given(loads_strategy)
    @settings(max_examples=30, deadline=None)
    def test_zero_amount_empty(self, loads):
        ns, cands = make_env(loads)
        assert selector_for(ns, cands).select(0.0) == []

    @given(amount_strategy)
    @settings(max_examples=20, deadline=None)
    def test_cold_namespace_selects_nothing(self, amount):
        ns, cands = make_env([0, 0, 0, 0])
        assert selector_for(ns, cands).select(amount) == []

    @given(loads_strategy, amount_strategy)
    @settings(max_examples=40, deadline=None)
    def test_frag_plans_reference_real_splits(self, loads, amount):
        ns, cands = make_env(loads)
        sel = selector_for(ns, cands)
        plans = sel.select(amount)
        for p in plans:
            if isinstance(p.unit, FragId):
                # splits land on the plan's namespace overlay, not the live map
                state = sel.plan.namespace.frag_state(p.unit.dir_id)
                assert state is not None
                assert state[0] == p.unit.bits
