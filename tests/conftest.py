"""Shared fixtures: small namespaces, clusters and simulator factories."""

from __future__ import annotations

import pytest


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden decision traces under tests/golden/ "
             "instead of asserting against them")


@pytest.fixture
def update_golden(request) -> bool:
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture(autouse=True)
def _sanitizer_clean():
    """Under REPRO_SANITIZE=1, every test must leave the runtime lock
    sanitizer report list empty — a lock-order inversion or unguarded
    write anywhere in the suite is a failure of the test that caused it.
    Tests that deliberately trigger reports (tests/test_sanitizer.py)
    consume them with ``sanitizer.reset()`` before returning."""
    from repro.serve import sanitizer

    sanitizer.reset()
    yield
    leftovers = sanitizer.reports()
    assert not leftovers, \
        f"sanitizer reports leaked from this test: {leftovers}"

from repro.cluster.simulator import SimConfig, Simulator
from repro.balancers import make_balancer
from repro.namespace.builder import build_fanout, build_private_dirs
from repro.namespace.subtree import AuthorityMap
from repro.namespace.tree import NamespaceTree
from repro.workloads import ZipfWorkload


@pytest.fixture
def tree() -> NamespaceTree:
    """root -> a(3 files), b(2 files) -> b1(4 files), b2(0 files)."""
    t = NamespaceTree()
    a = t.add_dir(0, "a")
    b = t.add_dir(0, "b")
    b1 = t.add_dir(b, "b1")
    b2 = t.add_dir(b, "b2")
    t.add_files(a, 3)
    t.add_files(b, 2)
    t.add_files(b1, 4)
    assert b2 == 4
    return t


@pytest.fixture
def authmap(tree) -> AuthorityMap:
    return AuthorityMap(tree, initial_mds=0)


@pytest.fixture
def fanout_tree():
    """20 equal directories of 10 files each under one root."""
    return build_fanout(20, 10)


@pytest.fixture
def private_tree():
    return build_private_dirs(8, 50)


@pytest.fixture
def small_sim_config() -> SimConfig:
    return SimConfig(n_mds=3, mds_capacity=50.0, epoch_len=5, max_ticks=2000,
                     migration_rate=100, seed=1)


@pytest.fixture
def make_sim(small_sim_config):
    """Factory: make_sim(balancer_name, workload=None, **cfg_overrides)."""

    def factory(balancer: str = "nop", workload=None, schedule=None, **overrides):
        cfg = small_sim_config.with_(**overrides) if overrides else small_sim_config
        wl = workload or ZipfWorkload(6, files_per_dir=50, reads_per_client=300)
        inst = wl.materialize(seed=3)
        return Simulator(inst, make_balancer(balancer), cfg, schedule=schedule)

    return factory
