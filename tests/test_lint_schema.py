"""Cross-checks between the linter's static schema view and the runtime.

The trace-schema rule recovers the event set from ``obs/events.py``'s
AST; these tests pin that static view to the runtime registry
(:func:`repro.obs.events.declared_event_types`) so neither can drift, and
pin the metric-name grammar to what the OpenMetrics sanitizer actually
accepts unchanged.
"""

import pathlib

from repro.lint.engine import build_project
from repro.lint.schema import _declared_events, _registered_names
from repro.obs.events import EVENT_TYPES, declared_event_types
from repro.obs.prom import is_valid_metric_name, sanitize_metric_name

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"


def _events_module():
    project, errors = build_project([SRC / "repro" / "obs" / "events.py"],
                                    root=SRC)
    assert errors == []
    (module,) = project.modules
    return module


def test_static_declared_etypes_match_runtime_registry():
    declared = _declared_events(_events_module())
    static_etypes = {etype for etype, _node in declared.values()}
    assert static_etypes == set(declared_event_types())
    assert declared_event_types() == frozenset(EVENT_TYPES)


def test_static_registration_matches_declared_classes():
    module = _events_module()
    declared = _declared_events(module)
    registered, node = _registered_names(module)
    assert node is not None
    assert registered == set(declared)
    # and the runtime agrees class-by-class
    assert {cls.__name__ for cls in EVENT_TYPES.values()} == registered


def test_runtime_etype_tags_are_the_registry_keys():
    for tag, cls in EVENT_TYPES.items():
        assert cls.etype == tag


def test_metric_name_grammar_accepts_what_sanitize_keeps():
    good = ["sim.epochs", "mds.load", "migration.task_inodes", "x", "_x",
            "phase.serve", "a:b", "a1.b2_c3"]
    for name in good:
        assert is_valid_metric_name(name), name
        # dots aside, sanitization is the identity on legal names
        assert sanitize_metric_name(name) == name.replace(".", "_")


def test_metric_name_grammar_rejects_manglable_names():
    bad = ["", "1abc", "sim epochs", "ops/served", "nope!", "naïve", "a-b"]
    for name in bad:
        assert not is_valid_metric_name(name), name
