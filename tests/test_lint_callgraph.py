"""Property tests: call-graph construction is deterministic and total.

Synthetic module trees are drawn from a small grammar (modules holding
free functions, classes with methods and nested defs, and call sites
aimed at known or unknown names) and rendered to source. For every tree:

* :func:`repro.lint.callgraph.build_callgraph` never raises, and every
  ``def`` in every AST appears in ``graph.functions`` (totality);
* two independent builds — including over a permuted module list —
  produce byte-identical graph shapes (determinism);
* structural invariants hold: call-site keys are real functions, every
  resolved callee exists, class methods point at collected functions;
* :func:`repro.lint.effects.analyze_effects` reaches a fixpoint on the
  same tree without raising (the worklist terminates).
"""

import ast
import pathlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.callgraph import build_callgraph
from repro.lint.effects import analyze_effects
from repro.lint.engine import ModuleInfo, Project

LAYERS = ("core", "obs", "util")


def _module_info(layer: str, name: str, source: str) -> ModuleInfo:
    return ModuleInfo(
        path=pathlib.Path(f"repro/{layer}/{name}.py"),
        display=f"repro/{layer}/{name}.py",
        module=f"repro.{layer}.{name}",
        tree=ast.parse(source),
        source=source,
    )


@st.composite
def module_trees(draw) -> list[tuple[str, str, str]]:
    """(layer, name, source) triples rendered from a drawn structure."""
    n_mods = draw(st.integers(min_value=1, max_value=3))
    mods = []
    # global pool of callable names, filled as modules are drawn; calls
    # may dangle (earlier module calling a name that never exists)
    pool = ["ext.helper", "missing_fn"]
    for mi in range(n_mods):
        layer = draw(st.sampled_from(LAYERS))
        lines = []
        n_funcs = draw(st.integers(min_value=0, max_value=3))
        for fi in range(n_funcs):
            fname = f"f{mi}_{fi}"
            pool.append(fname)
            body = []
            for _ in range(draw(st.integers(min_value=0, max_value=2))):
                callee = draw(st.sampled_from(pool))
                body.append(f"    {callee.split('.')[-1]}(x)")
            if draw(st.booleans()):
                body.append("    x.items.append(1)")
            if draw(st.booleans()):
                nested = [f"def f{mi}_{fi}(x):",
                          "    def inner(y):",
                          "        x.append(y)",
                          "    inner(1)"]
                lines.extend(nested)
            else:
                lines.append(f"def f{mi}_{fi}(x):")
                lines.extend(body or ["    pass"])
            lines.append("")
        n_classes = draw(st.integers(min_value=0, max_value=2))
        for ci in range(n_classes):
            base = ""
            if mods and draw(st.booleans()):
                # subclass a class from an earlier module (cross-module
                # bases exercise _link_classes resolution)
                other_layer, other_name, other_src = draw(
                    st.sampled_from(mods))
                if "class C0" in other_src:
                    base = "(C0)"
                    lines.append(
                        f"from repro.{other_layer}.{other_name} import C0")
            lines.append(f"class C{ci}{base}:")
            lines.append("    def m(self, v):")
            if draw(st.booleans()):
                lines.append("        v.loads[0] = 1.0")
            else:
                lines.append("        return v.loads")
            if draw(st.booleans()):
                lines.append("    @property")
                lines.append("    def p(self):")
                lines.append("        return 1")
            lines.append("")
        mods.append((layer, f"m{mi}", "\n".join(lines) + "\n"))
    return mods


def _shape(graph):
    """Order-insensitive, ast-free rendering of a CallGraph."""
    return (
        {q: (fn.params, fn.class_qualname, fn.is_async, fn.is_property,
             fn.returns) for q, fn in graph.functions.items()},
        {q: (c.bases, dict(sorted(c.methods.items())),
             tuple(sorted(c.properties)))
         for q, c in graph.classes.items()},
        {q: tuple((s.callee, s.external, s.line, s.implicit)
                  for s in sites)
         for q, sites in graph.calls.items()},
    )


def _defs_in(tree: ast.Module) -> int:
    return sum(isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
               for n in ast.walk(tree))


@settings(max_examples=60, deadline=None)
@given(module_trees())
def test_callgraph_total_and_deterministic(mods):
    infos = [_module_info(*m) for m in mods]
    graph = build_callgraph(Project(modules=infos))

    # totality: every def collected, no construction error
    n_defs = sum(_defs_in(i.tree) for i in infos)
    assert len(graph.functions) == n_defs

    # determinism: a fresh build from re-parsed sources, in reversed
    # module order, has the same shape
    infos2 = [_module_info(*m) for m in reversed(mods)]
    graph2 = build_callgraph(Project(modules=infos2))
    assert _shape(graph) == _shape(graph2)

    # structural invariants
    for caller, sites in graph.calls.items():
        assert caller in graph.functions
        for site in sites:
            assert site.callee is None or site.callee in graph.functions
    for cls in graph.classes.values():
        for fq in cls.methods.values():
            assert fq in graph.functions


@settings(max_examples=40, deadline=None)
@given(module_trees())
def test_effect_fixpoint_terminates_and_covers_every_function(mods):
    infos = [_module_info(*m) for m in mods]
    project = Project(modules=infos)
    analysis = analyze_effects(project)
    for qn in analysis.graph.functions:
        eff = analysis.of(qn)
        assert eff.mutated is not None
        # effect sets only mention names, never AST nodes
        assert all(isinstance(n, str) for n in eff.mutated | eff.stored)


def test_callgraph_is_cached_on_the_project():
    from repro.lint.callgraph import get_callgraph
    info = _module_info("core", "m", "def f(x):\n    return x\n")
    project = Project(modules=[info])
    assert get_callgraph(project) is get_callgraph(project)
