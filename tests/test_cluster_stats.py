"""AccessStats: heat, cutting windows, locality classification."""

import pytest

from repro.cluster.stats import AccessStats


@pytest.fixture
def stats(tree):
    return AccessStats(tree, heat_decay=0.5, recurrence_window=2,
                       pattern_windows=2, sibling_probability=0.0, seed=1)


class TestValidation:
    def test_bad_decay(self, tree):
        with pytest.raises(ValueError):
            AccessStats(tree, heat_decay=0.0)

    def test_bad_windows(self, tree):
        with pytest.raises(ValueError):
            AccessStats(tree, recurrence_window=0)

    def test_bad_probability(self, tree):
        with pytest.raises(ValueError):
            AccessStats(tree, sibling_probability=1.5)


class TestHeat:
    def test_accumulates_in_epoch(self, stats):
        stats.record_file_access(1, 0)
        stats.record_file_access(1, 1)
        assert stats.heat_array()[1] == pytest.approx(2.0)

    def test_decays_at_epoch_end(self, stats):
        stats.record_file_access(1, 0)
        stats.record_file_access(1, 1)
        stats.end_epoch()
        assert stats.heat_array()[1] == pytest.approx(1.0)  # 2 * 0.5

    def test_dir_access_heats(self, stats):
        stats.record_dir_access(2)
        assert stats.heat_array()[2] == pytest.approx(1.0)


class TestClassification:
    def test_first_touch_is_spatial(self, stats):
        stats.record_file_access(1, 0)
        stats.end_epoch()
        p = stats.pattern_arrays()
        assert p["first"][1] == 1 and p["recurrent"][1] == 0

    def test_retouch_within_window_is_recurrent(self, stats):
        stats.record_file_access(1, 0)
        stats.end_epoch()
        stats.record_file_access(1, 0)
        stats.end_epoch()
        p = stats.pattern_arrays()
        assert p["recurrent"][1] == 1

    def test_retouch_same_epoch_is_recurrent(self, stats):
        stats.record_file_access(1, 0)
        stats.record_file_access(1, 0)
        stats.end_epoch()
        p = stats.pattern_arrays()
        assert p["recurrent"][1] == 1 and p["first"][1] == 1

    def test_retouch_beyond_window_is_spatial_again(self, stats):
        # window = 2 epochs: a file untouched for 3 epochs is unvisited again
        stats.record_file_access(1, 0)
        for _ in range(4):
            stats.end_epoch()
        stats.record_file_access(1, 0)
        stats.end_epoch()
        p = stats.pattern_arrays()
        assert p["first"][1] == 1 and p["recurrent"][1] == 0

    def test_created_counts(self, stats, tree):
        idx = tree.add_files(1, 1)
        stats.record_file_access(1, idx, created=True)
        stats.end_epoch()
        p = stats.pattern_arrays()
        assert p["created"][1] == 1 and p["first"][1] == 1


class TestWindows:
    def test_window_sums_roll(self, stats):
        stats.record_file_access(1, 0)
        stats.end_epoch()  # epoch 0
        stats.end_epoch()  # epoch 1
        assert stats.pattern_arrays()["visits"][1] == 1  # still in 2-window
        stats.end_epoch()  # epoch 2: epoch-0 data leaves the window
        assert stats.pattern_arrays()["visits"][1] == 0

    def test_ls_includes_first_visits(self, stats):
        stats.record_file_access(1, 0)
        stats.end_epoch()
        assert stats.pattern_arrays()["ls"][1] == 1


class TestUnvisitedStock:
    def test_initial_stock_is_all_files(self, stats, tree):
        stock = stats.unvisited_array()
        assert stock[1] == 3 and stock[3] == 4

    def test_access_reduces_stock(self, stats):
        stats.record_file_access(1, 0)
        stats.end_epoch()
        assert stats.unvisited_array()[1] == 2

    def test_stock_returns_after_window(self, stats):
        stats.record_file_access(1, 0)
        for _ in range(4):
            stats.end_epoch()
        assert stats.unvisited_array()[1] == 3  # sliding definition


class TestSiblingBonus:
    def test_bonus_lands_on_a_sibling(self, tree):
        stats = AccessStats(tree, sibling_probability=1.0, seed=1)
        tree.add_files(4, 5)  # give the sibling unvisited stock
        # dir 3 (b1) has sibling dir 4 (b2)
        stats.record_file_access(3, 0)
        stats.end_epoch()
        p = stats.pattern_arrays()
        assert p["ls"][3] == 1  # own first visit
        assert p["ls"][4] == 1  # sibling bonus (only possible sibling)

    def test_bonus_capped_by_sibling_stock(self, tree):
        stats = AccessStats(tree, sibling_probability=1.0, seed=1)
        # sibling dir 4 (b2) is empty: it cannot absorb any future visits
        for i in range(4):
            stats.record_file_access(3, i)
        stats.end_epoch()
        assert stats.pattern_arrays()["ls"][4] == 0

    def test_no_bonus_when_disabled(self, tree):
        stats = AccessStats(tree, sibling_probability=0.0, seed=1)
        stats.record_file_access(3, 0)
        stats.end_epoch()
        assert stats.pattern_arrays()["ls"][4] == 0


class TestGrowth:
    def test_new_dirs_get_stats(self, tree):
        stats = AccessStats(tree, sibling_probability=0.0)
        d = tree.add_dir(0, "late")
        tree.add_files(d, 2)
        stats.record_file_access(d, 0)
        stats.end_epoch()
        p = stats.pattern_arrays()
        assert p["visits"][d] == 1
        assert stats.unvisited_array()[d] == 1
