"""Control-plane message sizing (paper §3.4 overhead accounting)."""

import pytest

from repro.cluster.messages import Heartbeat, ImbalanceState, MigrationDecision, wire_size


class TestWireSize:
    def test_imbalance_state_is_small(self):
        # Paper: ~0.94 KB per epoch total per MDS; one state message is tiny.
        assert wire_size(ImbalanceState(1, 0, 123.0)) <= 64

    def test_heartbeat_grows_with_subtrees(self):
        small = wire_size(Heartbeat(0, 0, 1.0, ()))
        big = wire_size(Heartbeat(0, 0, 1.0, tuple((i, 1.0) for i in range(50))))
        assert big > small

    def test_decision_grows_with_assignments(self):
        a = wire_size(MigrationDecision(0, 0, {1: 5.0}))
        b = wire_size(MigrationDecision(0, 0, {1: 5.0, 2: 3.0, 3: 1.0}))
        assert b > a

    def test_n_to_1_cheaper_than_n_to_n(self):
        # Lunule's centralized collection: n states vs n^2 heartbeats.
        n = 16
        lunule = n * wire_size(ImbalanceState(0, 0, 1.0))
        vanilla = n * n * wire_size(Heartbeat(0, 0, 1.0, tuple((i, 1.0) for i in range(8))))
        assert lunule < vanilla / 10

    def test_non_message_rejected(self):
        with pytest.raises(TypeError):
            wire_size("hello")
