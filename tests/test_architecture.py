"""Architecture invariants of the policy/mechanism split.

Policies plan from a :class:`~repro.core.view.ClusterView` and return an
:class:`~repro.core.plan.EpochPlan`; only the mechanism layer (the
``cluster`` package) may touch the simulator. The observability layer
(``obs``) is likewise simulator-free: the simulator feeds it, never the
other way around, so traces/metrics/recorders stay reusable from tests
and offline tooling. These tests walk the import graph statically so a
reintroduced ``repro.cluster.simulator`` dependency fails CI before it
becomes a runtime entanglement.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"
SCANNED_PACKAGES = ("balancers", "core", "obs")
FORBIDDEN = "repro.cluster.simulator"


def policy_modules() -> list[pathlib.Path]:
    out = []
    for pkg in SCANNED_PACKAGES:
        out.extend(sorted((SRC / pkg).rglob("*.py")))
    assert out, f"no modules found under {SRC}"
    return out


def imported_names(path: pathlib.Path) -> set[str]:
    """Every module name the file imports, at any nesting depth."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module:
            names.add(node.module)
            # `from repro.cluster import simulator` is the same dependency
            names.update(f"{node.module}.{alias.name}" for alias in node.names)
    return names


@pytest.mark.parametrize("path", policy_modules(),
                         ids=lambda p: str(p.relative_to(SRC)))
def test_policy_layer_never_imports_the_simulator(path):
    offending = {n for n in imported_names(path)
                 if n == FORBIDDEN or n.startswith(FORBIDDEN + ".")}
    assert not offending, (
        f"{path.relative_to(SRC)} imports {sorted(offending)}; policies must "
        f"consume ClusterView and return EpochPlan instead of touching the "
        f"simulator")


def test_policy_layer_covers_every_balancer():
    """The invariant above actually scans the modules it claims to."""
    names = {p.name for p in policy_modules()}
    for expected in ("balancer.py", "vanilla.py", "greedyspill.py",
                     "mantle.py", "dirhash.py", "nop.py", "base.py",
                     "initiator.py", "selector.py", "view.py", "plan.py",
                     # observability stays simulator-free too
                     "registry.py", "tracelog.py", "events.py",
                     "timeseries.py", "spans.py", "prom.py", "recorder.py",
                     "aggregate.py", "report.py"):
        assert expected in names
