"""Architecture invariants of the policy/mechanism split.

Policies plan from a :class:`~repro.core.view.ClusterView` and return an
:class:`~repro.core.plan.EpochPlan`; only the mechanism layer (the
``cluster`` package) may touch the simulator, and ``obs`` is likewise
simulator-free. Since PR 4 the whole invariant lives in the ``layer-dag``
and ``import-cycle`` lint rules (``repro lint``, driven by the
declarative table in :mod:`repro.lint.config`); these tests delegate to
those rules, keeping one parametrized test per scanned module so a
violation still fails CI with a per-file message — now for *any* illegal
cross-layer import, not just the simulator.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.lint.config import LAYER_DAG
from repro.lint.engine import build_project
from repro.lint.layering import ImportCycleRule, LayerDagRule

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
SCANNED_PACKAGES = tuple(sorted(LAYER_DAG))

_PROJECT, _PARSE_ERRORS = build_project([SRC], root=SRC.parent.parent)


def layered_modules():
    out = [m for m in _PROJECT.modules if m.layer in SCANNED_PACKAGES]
    assert out, f"no modules found under {SRC}"
    return out


@pytest.mark.parametrize("module", layered_modules(),
                         ids=lambda m: str(m.path.relative_to(SRC)))
def test_module_obeys_the_layer_dag(module):
    findings = list(LayerDagRule().check_module(module, _PROJECT))
    assert not findings, "\n".join(
        f"{f.location}: {f.message}" for f in findings)


def test_no_module_scope_import_cycles():
    findings = list(ImportCycleRule().check_project(_PROJECT))
    assert not findings, "\n".join(
        f"{f.location}: {f.message}" for f in findings)


def test_every_package_sits_in_the_layer_table():
    assert _PARSE_ERRORS == []
    packages = {m.layer for m in _PROJECT.modules if m.layer is not None}
    unlisted = packages - set(LAYER_DAG) - {"cli", "__main__"}
    assert not unlisted, (
        f"packages {sorted(unlisted)} have no entry in "
        f"repro.lint.config.LAYER_DAG")


def test_layer_scan_covers_every_balancer():
    """The invariant above actually scans the modules it claims to."""
    names = {m.path.name for m in layered_modules()}
    for expected in ("balancer.py", "vanilla.py", "greedyspill.py",
                     "mantle.py", "dirhash.py", "nop.py", "base.py",
                     "initiator.py", "selector.py", "view.py", "plan.py",
                     # observability stays simulator-free too
                     "registry.py", "tracelog.py", "events.py",
                     "timeseries.py", "spans.py", "prom.py", "recorder.py",
                     "aggregate.py", "report.py",
                     # mechanism and harness are scanned since PR 4
                     "simulator.py", "migration.py", "engine.py",
                     "runner.py"):
        assert expected in names
