"""Golden-trace regression suite.

Each scenario runs a fixed-seed workload under one balancer and compares
the full balancer-decision trace — epoch boundaries, IF values, role
assignments, subtree selections, migration plan/commit/abort — *byte for
byte* against a snapshot under ``tests/golden/``. Any change to the
balancing pipeline's decisions, however subtle, shows up as a diff here
before it shows up as a silent shift in a paper figure.

To bless intentional changes::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-golden

and review the golden-file diff like any other code change.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.cluster.simulator import SimConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_traced
from repro.obs.tracelog import TraceLog, read_jsonl

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: small but non-trivial: 3 MDSs, enough clients and ops that the trigger
#: fires, roles are paired, subtrees are selected, and migrations commit
GOLDEN_SIM = SimConfig(n_mds=3, mds_capacity=60.0, epoch_len=5,
                       max_ticks=3000, migration_rate=50, seed=0)

SCENARIOS = {
    "mdtest_lunule": ("mdtest", "lunule"),
    "mdtest_vanilla": ("mdtest", "vanilla"),
    "mixed_lunule": ("mixed", "lunule"),
    "mixed_vanilla": ("mixed", "vanilla"),
}


def run_scenario(name: str, record: bool = False):
    workload, balancer = SCENARIOS[name]
    sim = GOLDEN_SIM.with_(record=True) if record else GOLDEN_SIM
    cfg = ExperimentConfig(workload=workload, balancer=balancer, n_clients=8,
                           seed=7, scale=0.15, sim=sim)
    return run_traced(cfg)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace(name, update_golden):
    result, sim = run_scenario(name)
    path = GOLDEN_DIR / f"{name}.jsonl"
    produced = sim.trace.dumps()

    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(produced, encoding="utf-8", newline="\n")
        pytest.skip(f"golden trace {path.name} rewritten")

    assert path.exists(), (
        f"missing golden trace {path}; run with --update-golden to create it")
    golden = path.read_text(encoding="utf-8")
    assert produced == golden, (
        f"decision trace for {name} diverged from {path.name}; if the change "
        f"is intentional, re-bless with --update-golden and review the diff")


@pytest.mark.parametrize("name", ["mdtest_lunule", "mixed_vanilla"])
def test_golden_run_is_replayable(name):
    """Two in-process runs of the same scenario are byte-identical."""
    _, sim_a = run_scenario(name)
    _, sim_b = run_scenario(name)
    assert sim_a.trace.dumps() == sim_b.trace.dumps()


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_traces_round_trip(name):
    """Golden files parse back into the exact events a run produces."""
    path = GOLDEN_DIR / f"{name}.jsonl"
    if not path.exists():
        pytest.skip("golden trace not generated yet")
    events = list(read_jsonl(path))
    log = TraceLog()
    for e in events:
        log.emit(e)
    assert log.dumps() == path.read_text(encoding="utf-8")


@pytest.mark.parametrize("name", ["mdtest_lunule", "mixed_vanilla"])
def test_golden_timeseries(name, update_golden):
    """The flight recorder's per-epoch table is byte-stable too.

    Logical clocks and repr-encoded floats make the recorded CSV a pure
    function of the (seeded) run, so it goldens exactly like the decision
    trace — one snapshot guards the whole sampling pipeline: column set,
    epoch cadence and every recorded value.
    """
    result, sim = run_scenario(name, record=True)
    path = GOLDEN_DIR / f"{name}.timeseries.csv"
    produced = sim.recorder.timeseries.dumps_csv()

    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(produced, encoding="utf-8", newline="\n")
        pytest.skip(f"golden time series {path.name} rewritten")

    assert path.exists(), (
        f"missing golden time series {path}; run with --update-golden to "
        f"create it")
    assert produced == path.read_text(encoding="utf-8"), (
        f"recorded time series for {name} diverged from {path.name}; if the "
        f"change is intentional, re-bless with --update-golden")


@pytest.mark.parametrize("name", ["mdtest_lunule", "mixed_vanilla"])
def test_recording_leaves_the_decision_trace_untouched(name):
    """Turning the recorder on must observe, never perturb."""
    _, plain = run_scenario(name)
    _, recorded = run_scenario(name, record=True)
    assert recorded.trace.dumps() == plain.trace.dumps()


def test_workload_profiling_leaves_the_golden_trace_untouched():
    """The workload profiler observes the run; it must never steer it.

    A profiled golden-scenario run has to match the blessed ``.jsonl``
    byte for byte — the ``wl.*`` columns and ``workload.*`` gauges are
    additive — and building (and emitting) the cost/benefit ledger over a
    *copy* of the trace must leave the original trace bytes alone.
    """
    from repro.obs.outcomes import build_ledger, emit_outcomes
    from repro.obs.tracelog import TraceLog as _Log

    workload, balancer = SCENARIOS["mdtest_lunule"]
    cfg = ExperimentConfig(
        workload=workload, balancer=balancer, n_clients=8, seed=7,
        scale=0.15,
        sim=GOLDEN_SIM.with_(record=True, workload_profile=True))
    _, sim = run_traced(cfg)
    produced = sim.trace.dumps()

    path = GOLDEN_DIR / "mdtest_lunule.jsonl"
    if path.exists():
        assert produced == path.read_text(encoding="utf-8")

    ledger = build_ledger(sim.trace.events())
    assert len(ledger) > 0  # the scenario migrates; every commit is judged
    annotated = _Log(ids=sim.trace.ids)
    for e in sim.trace.events():
        annotated.emit(e)
    emit_outcomes(annotated, ledger)
    assert sim.trace.dumps() == produced
    assert len(annotated) == len(sim.trace) + len(ledger)

    # profiled runs grow wl.* columns; the golden CSV (unprofiled) doesn't
    assert any(c.startswith("wl.")
               for c in sim.recorder.timeseries.columns())


def test_golden_chaos_trace(update_golden):
    """A chaos run goldens too: faults, causes and aborts, byte for byte.

    One disturbed scenario (flapping rank 1 under lunule, seed 1) guards
    the failure-path event stream the fault-free goldens never emit:
    ``fault_injected`` / ``fault_cleared`` and ``cause``-bearing
    ``migration_aborted`` records.
    """
    from repro.experiments.chaos import run_chaos

    _, _, sim = run_chaos("flap", seed=1)
    path = GOLDEN_DIR / "chaos_flap.jsonl"
    produced = sim.trace.dumps()

    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(produced, encoding="utf-8", newline="\n")
        pytest.skip(f"golden trace {path.name} rewritten")

    assert path.exists(), (
        f"missing golden trace {path}; run with --update-golden to create it")
    assert produced == path.read_text(encoding="utf-8"), (
        "chaos decision trace diverged from chaos_flap.jsonl; if the change "
        "is intentional, re-bless with --update-golden and review the diff")


def test_golden_chaos_trace_round_trips():
    """Fault events survive the JSONL round trip like every other event."""
    path = GOLDEN_DIR / "chaos_flap.jsonl"
    if not path.exists():
        pytest.skip("golden chaos trace not generated yet")
    from repro.obs.events import NO_DECISION

    events = list(read_jsonl(path))
    log = TraceLog()
    for e in events:
        log.emit(e)
    assert log.dumps() == path.read_text(encoding="utf-8")
    counts = log.counts()
    assert counts["fault_injected"] == counts["fault_cleared"] == 3
    assert any(getattr(e, "cause", NO_DECISION) != NO_DECISION
               for e in log.events("migration_aborted"))


def test_golden_traces_cover_the_decision_pipeline():
    """The Lunule goldens exercise every decision-event stage per epoch."""
    result, sim = run_scenario("mdtest_lunule")
    counts = sim.trace.counts()
    n_epochs = len(result.if_series)
    assert counts["epoch_start"] == n_epochs
    # one reporting IF per epoch plus one initiator IF per balancer round
    assert counts["if_computed"] >= n_epochs
    assert counts.get("role_assigned", 0) > 0
    assert counts.get("subtree_selected", 0) > 0
    assert counts.get("migration_committed", 0) == result.committed_tasks
    # migrated-inode accounting in the trace matches the result series
    traced = sum(e.inodes for e in sim.trace.events("migration_committed"))
    assert traced == result.migrated_series[-1]


def test_golden_traces_carry_complete_provenance():
    """Every golden migration chains back to an IF root, ids monotone.

    This is the provenance acceptance bar: a full (un-ringed) trace must
    explain every migration end-to-end and every quiet epoch by reason.
    """
    from repro.obs.provenance import ProvenanceGraph, explain

    for name in sorted(SCENARIOS):
        _, sim = run_scenario(name)
        events = list(sim.trace)
        graph = ProvenanceGraph(events)
        # decision ids are monotone in emission order
        dids = [e.did for e in events if getattr(e, "did", -1) != -1]
        assert dids == sorted(dids), f"{name}: ids out of order"
        assert len(dids) == len(set(dids)), f"{name}: duplicate ids"
        for e in sim.trace.events("migration_planned"):
            chain = graph.chain(e.did)
            assert not chain.truncated, f"{name}: truncated chain {e.did}"
            assert chain.events[0].etype == "if_computed", (
                f"{name}: migration {e.did} does not root at an IF")
        for e in sim.trace.events("epoch_skipped"):
            assert graph.chain(e.did).events[0].etype == "if_computed"
        report = explain(events)
        assert report["summary"]["truncated_chains"] == 0
        assert report["summary"]["committed"] == sim.migrator.committed_tasks
