#!/usr/bin/env python
"""Quickstart: run one workload under two balancers and compare.

This is the 60-second tour of the public API:

1. build a workload (namespace shape + closed-loop clients),
2. pick a balancer by its paper name,
3. run the simulated MDS cluster,
4. read the metrics the paper reports (IF, throughput, completion time).

Run:  python examples/quickstart.py
"""

from repro import SimConfig, Simulator, make_balancer
from repro.workloads import ZipfWorkload


def run(balancer_name: str):
    # 20 Filebench-style clients, each with a private directory of 200
    # files, reading them with a Zipfian (80/20) distribution.
    workload = ZipfWorkload(n_clients=20, files_per_dir=200, reads_per_client=1500)
    instance = workload.materialize(seed=7)

    config = SimConfig(
        n_mds=5,            # five metadata servers, as in the paper
        mds_capacity=100,   # metadata ops per second each
        epoch_len=10,       # balancing decision every 10 simulated seconds
    )
    sim = Simulator(instance, make_balancer(balancer_name), config)
    return sim.run()


def main() -> None:
    print("Running the Filebench-Zipf workload on a 5-MDS cluster...\n")
    results = {name: run(name) for name in ("vanilla", "lunule")}

    header = f"{'balancer':10s} {'mean IF':>8s} {'peak IOPS':>10s} {'done at':>8s} {'migrated':>9s}"
    print(header)
    print("-" * len(header))
    for name, res in results.items():
        print(f"{name:10s} {res.mean_if(skip=2):8.3f} {res.peak_iops():10.0f} "
              f"{res.finished_tick:7d}s {res.migrated_series[-1]:9d}")

    van, lun = results["vanilla"], results["lunule"]
    speedup = van.finished_tick / lun.finished_tick
    print(f"\nLunule balanced the cluster to a {lun.mean_if(2):.3f} average "
          f"imbalance factor\n(vs {van.mean_if(2):.3f} for CephFS-Vanilla) and "
          f"finished {speedup:.2f}x faster.")


if __name__ == "__main__":
    main()
