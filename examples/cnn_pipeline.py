#!/usr/bin/env python
"""Why heat-based balancing fails on ML data pipelines — and Lunule doesn't.

Reproduces the paper's motivating CNN scenario (§2.2): many clients run the
ImageNet pre-processing scan. Files are visited once and never again, so
the *heat* (decayed popularity) a directory accumulated tells you exactly
which directories the scan has already finished with — heat-selected
migration ships dead metadata. Lunule's migration index instead predicts
future load from unvisited stock and sibling correlation.

The script runs all four balancers and prints the per-balancer imbalance
factor, migration efficiency (how much of what was migrated was ever
touched again) and completion time.

Run:  python examples/cnn_pipeline.py
"""

from repro import SimConfig, Simulator, make_balancer
from repro.workloads import CnnWorkload

BALANCERS = ("greedyspill", "vanilla", "lunule-light", "lunule")


def main() -> None:
    config = SimConfig(n_mds=5, mds_capacity=100, epoch_len=10)
    print("CNN image pre-processing: 20 clients scanning 100 class dirs "
          "(scaled ImageNet shape)\n")

    header = (f"{'balancer':13s} {'mean IF':>8s} {'sustained IOPS':>14s} "
              f"{'done at':>8s} {'migrated inodes':>16s}")
    print(header)
    print("-" * len(header))

    results = {}
    for name in BALANCERS:
        workload = CnnWorkload(n_clients=20, n_dirs=100, files_per_dir=40,
                               jitter=0.05)
        sim = Simulator(workload.materialize(seed=7), make_balancer(name), config)
        res = sim.run()
        results[name] = res
        sustained = sum(res.served_per_mds) / max(1, res.finished_tick)
        print(f"{name:13s} {res.mean_if(2):8.3f} {sustained:14.1f} "
              f"{res.finished_tick:7d}s {res.migrated_series[-1]:16d}")

    van, lun = results["vanilla"], results["lunule"]
    print(f"\nVanilla migrated {van.migrated_series[-1] / max(1, lun.migrated_series[-1]):.1f}x "
          "more inodes than Lunule yet stayed more imbalanced:")
    print("  - heat ranks directories by their PAST — for a scan that means "
          "already-finished dirs;")
    print("  - Lunule's mIndex = alpha*l_t + beta*l_s predicts the FUTURE: "
          "unvisited stock and sibling")
    print("    correlation point at the directories the scan has not reached "
          "yet.")


if __name__ == "__main__":
    main()
