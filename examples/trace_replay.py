#!/usr/bin/env python
"""Record, persist and replay metadata traces.

The paper's Web experiment replays a department web server's Apache access
log. This example shows the full trace workflow the repository supports:

1. synthesize a web access log (Apache common log format),
2. parse it into a compact numpy-backed trace against a built namespace,
3. save/load the trace (``.npz``),
4. replay it with many clients under two balancers and compare.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import SimConfig, Simulator, make_balancer
from repro.workloads.trace import (
    Trace,
    TraceWorkload,
    format_apache_log,
    parse_apache_log,
    record_workload,
)
from repro.workloads.web import WebWorkload


def main() -> None:
    # 1. Record a canonical web workload as a trace (this stands in for a
    #    real access log; any Apache common-format log works the same way).
    print("Recording a web-trace workload...")

    def fresh_workload():
        return WebWorkload(1, total_files=1500, n_requests=2500)

    trace, _tree = record_workload(fresh_workload(), seed=11)
    # the namespace the trace's dir/file ids refer to
    built = fresh_workload().materialize(seed=11).built
    print(f"  {len(trace)} ops, metadata ratio {trace.meta_ratio():.3f}")

    # 2. Round-trip through the Apache log format.
    log_text = format_apache_log(trace.slice(0, 200), built)
    print(f"  exported 200 ops as Apache log ({len(log_text.splitlines())} lines)")
    parsed = parse_apache_log(log_text, built)
    print(f"  re-parsed {len(parsed)} GET requests from the log")

    # 3. Persist and reload.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "web.npz"
        trace.save(path)
        loaded = Trace.load(path)
        print(f"  saved + reloaded trace: {len(loaded)} ops, "
              f"{path.stat().st_size / 1024:.1f} KiB on disk")

    # 4. Replay under two balancers: every client re-issues the log in order
    #    ("each client gets files in order", paper Table 1).
    print("\nReplaying with 12 clients on a 5-MDS cluster:")
    for balancer in ("vanilla", "lunule"):
        workload = TraceWorkload(12, trace,
                                 fresh_workload().materialize(seed=11).built)
        sim = Simulator(workload.materialize(seed=3), make_balancer(balancer),
                        SimConfig(n_mds=5, mds_capacity=100))
        res = sim.run()
        print(f"  {balancer:8s} mean IF {res.mean_if(2):.3f}  "
              f"done at {res.finished_tick}s  forwards {res.total_forwards}")


if __name__ == "__main__":
    main()
