#!/usr/bin/env python
"""Dynamic adaptation: grow the MDS cluster and the client population.

Reproduces the paper's §4.5 scenarios:

- **expansion** — start with 4 MDSs, add a fifth and a sixth at runtime;
  Lunule absorbs the new capacity within a few epochs;
- **client growth** — start with 10 rate-limited clients and add three more
  waves; the first (light) phase is an imbalance the urgency term
  classifies as benign, so Lunule deliberately does NOT migrate.

Run:  python examples/cluster_expansion.py
"""

import numpy as np

from repro import SimConfig, Simulator, make_balancer
from repro.workloads import ZipfWorkload


def expansion() -> None:
    print("=== MDS cluster expansion (4 -> 5 -> 6) under Lunule ===\n")
    workload = ZipfWorkload(n_clients=24, files_per_dir=200, reads_per_client=12000)
    instance = workload.materialize(seed=7)
    config = SimConfig(n_mds=4, mds_capacity=100, epoch_len=10, max_ticks=900)
    schedule = [
        (300, lambda sim: sim.add_mds(1)),
        (600, lambda sim: sim.add_mds(1)),
    ]
    res = Simulator(instance, make_balancer("lunule"), config, schedule).run()

    agg = res.aggregate_iops()
    for lo, hi, label in ((0, 300, "4 MDSs"), (300, 600, "5 MDSs"), (600, 900, "6 MDSs")):
        window = [a for t, a in zip(res.epoch_ticks, agg) if lo < t <= hi]
        print(f"  {label}: mean {np.mean(window):6.1f} IOPS, "
              f"peak {np.max(window):6.1f} IOPS")
    print("  -> each added MDS raises cluster throughput within a few epochs\n")


def client_growth() -> None:
    print("=== Client growth (10 -> 20 -> 30 -> 40), rate-limited clients ===\n")
    workload = ZipfWorkload(n_clients=40, files_per_dir=200, reads_per_client=7500,
                            client_rate=2)
    instance = workload.materialize(seed=7)
    waves = [instance.clients[i * 10:(i + 1) * 10] for i in range(4)]
    instance.clients = waves[0]
    schedule = [(250 * i, (lambda w: lambda sim: sim.add_clients(w))(waves[i]))
                for i in (1, 2, 3)]
    config = SimConfig(n_mds=5, mds_capacity=100, epoch_len=10, max_ticks=1000)
    res = Simulator(instance, make_balancer("lunule"), config, schedule).run()

    agg = res.aggregate_iops()
    prev_mig = 0
    for i in range(4):
        lo, hi = 250 * i, 250 * (i + 1)
        sel = [(a, m) for t, a, m in zip(res.epoch_ticks, agg, res.migrated_series)
               if lo < t <= hi]
        mean = np.mean([a for a, _ in sel])
        mig = sel[-1][1] - prev_mig
        prev_mig = sel[-1][1]
        note = "  <- benign imbalance: urgency suppressed re-balance" if i == 0 else ""
        print(f"  {10 * (i + 1):2d} clients: mean {mean:6.1f} IOPS, "
              f"{mig:5d} inodes migrated this phase{note}")
    print("\n  -> throughput scales with the client population; the lightly "
          "loaded first phase\n     triggers no migration at all (paper Fig. 12b).")


if __name__ == "__main__":
    expansion()
    client_growth()
