#!/usr/bin/env python
"""Writing your own metadata balancer against the public policy API.

The paper's future-work section envisions a generic policy framework "more
powerful than Mantle". This repository's :class:`repro.balancers.base.Balancer`
interface is exactly that seam: a policy receives an immutable
:class:`~repro.core.view.ClusterView` snapshot each epoch and returns an
:class:`~repro.core.plan.EpochPlan` of declarative actions — it never
touches the simulator.

Below is a deliberately simple *water-filling* balancer — every epoch it
tops up the least-loaded MDS from the most-loaded one — compared against
Lunule and Vanilla on the MDtest create storm.

Run:  python examples/custom_balancer.py
"""

from repro import SimConfig, Simulator, make_balancer
from repro.balancers.base import Balancer
from repro.balancers.candidates import candidates_for, scale_to_load
from repro.workloads import MdtestWorkload


class WaterFillingBalancer(Balancer):
    """Move half the gap between the busiest and idlest MDS each epoch."""

    name = "water-filling"

    def __init__(self, threshold: float = 0.2) -> None:
        super().__init__()
        self.threshold = threshold

    def on_epoch(self, view):
        loads = view.heat_loads()
        hi = max(range(len(loads)), key=loads.__getitem__)
        lo = min(range(len(loads)), key=loads.__getitem__)
        gap = loads[hi] - loads[lo]
        if loads[hi] == 0 or gap < self.threshold * view.default_capacity:
            return None
        plan = view.new_plan()
        amount = gap / 2.0
        # Rank export candidates by decayed heat and scale into IOPS units.
        cands = candidates_for(plan.namespace, hi, view.heat)
        scale = scale_to_load(cands, loads[hi])
        if scale <= 0:
            return None
        remaining = amount
        for c in cands:
            if remaining <= 0:
                break
            est = c.load * scale
            if 0 < est <= remaining * 1.2:
                plan.export(hi, lo, c.unit, est)
                remaining -= est
        return plan


def main() -> None:
    config = SimConfig(n_mds=5, mds_capacity=100, epoch_len=10)
    print("MDtest create storm: 20 clients x 3000 creates, 5 MDSs\n")
    header = f"{'balancer':14s} {'mean IF':>8s} {'peak IOPS':>10s} {'done at':>8s}"
    print(header)
    print("-" * len(header))
    for balancer in (make_balancer("vanilla"), WaterFillingBalancer(),
                     make_balancer("lunule")):
        workload = MdtestWorkload(n_clients=20, creates_per_client=3000)
        sim = Simulator(workload.materialize(seed=7), balancer, config)
        res = sim.run()
        print(f"{res.balancer:14s} {res.mean_if(2):8.3f} "
              f"{res.peak_iops():10.0f} {res.finished_tick:7d}s")
    print("\nThe custom policy plugs into the same ClusterView/EpochPlan seam "
          "as Lunule itself:\nsubclass Balancer, read the view, plan "
          "exports.")


if __name__ == "__main__":
    main()
