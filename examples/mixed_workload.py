#!/usr/bin/env python
"""The mixed-workload experiment (paper §4.4) end to end.

Four client groups (CNN scan, NLP scan, Web replay, Zipf reads) share one
namespace and one 5-MDS cluster. The script compares Lunule against
CephFS-Vanilla on the three §4.4 metrics: imbalance factor over time,
aggregate throughput, and the client job-completion-time distribution.

Run:  python examples/mixed_workload.py
"""

import numpy as np

from repro import SimConfig, Simulator, make_balancer
from repro.workloads import (
    CnnWorkload,
    MixedWorkload,
    NlpWorkload,
    WebWorkload,
    ZipfWorkload,
)


def build_mixture() -> MixedWorkload:
    return MixedWorkload([
        CnnWorkload(6, n_dirs=100, files_per_dir=40, jitter=0.05),
        NlpWorkload(6, total_files=4000, jitter=0.05),
        WebWorkload(6, total_files=2000, n_requests=3000),
        ZipfWorkload(6, files_per_dir=200, reads_per_client=1500),
    ])


def sparkline(values, width: int = 40) -> str:
    """Cheap terminal sparkline for a time series."""
    blocks = " .:-=+*#%@"
    arr = np.asarray(values, dtype=float)
    if arr.size > width:
        idx = np.linspace(0, arr.size - 1, width).round().astype(int)
        arr = arr[idx]
    top = arr.max() if arr.max() > 0 else 1.0
    return "".join(blocks[min(int(v / top * (len(blocks) - 1)), len(blocks) - 1)]
                   for v in arr)


def main() -> None:
    config = SimConfig(n_mds=5, mds_capacity=100, epoch_len=10)
    results = {}
    for name in ("vanilla", "lunule"):
        sim = Simulator(build_mixture().materialize(seed=7),
                        make_balancer(name), config)
        results[name] = sim.run()

    print("Imbalance factor over time (lower/flatter is better):")
    for name, res in results.items():
        print(f"  {name:8s} |{sparkline(res.if_series)}|  "
              f"mean {res.mean_if(2):.3f}")

    print("\nAggregate metadata throughput over time:")
    for name, res in results.items():
        agg = res.aggregate_iops()
        print(f"  {name:8s} |{sparkline(agg)}|  peak {agg.max():.0f} IOPS")

    print("\nJob completion times (percentiles over all 24 clients):")
    for name, res in results.items():
        jct = res.job_completion_times()
        p50, p80, p99 = np.percentile(jct, [50, 80, 99])
        print(f"  {name:8s} p50={p50:6.0f}s  p80={p80:6.0f}s  p99={p99:6.0f}s")

    van = results["vanilla"].job_completion_times()
    lun = results["lunule"].job_completion_times()
    gain = 1 - np.percentile(lun, 99) / np.percentile(van, 99)
    print(f"\nLunule shortens the 99th-percentile completion time by "
          f"{100 * gain:.1f}% (paper reports 1.42x).")


if __name__ == "__main__":
    main()
